#include "stats/normal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/math_util.h"

namespace dpaudit {
namespace {

TEST(NormalPdfTest, KnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 1.0 / std::sqrt(2.0 * kPi), 1e-15);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-14);
  EXPECT_NEAR(NormalPdf(0.0, 0.0, 2.0), 0.5 / std::sqrt(2.0 * kPi), 1e-15);
}

TEST(NormalPdfTest, Symmetry) {
  for (double x : {0.5, 1.0, 2.7, 5.0}) {
    EXPECT_DOUBLE_EQ(NormalPdf(x), NormalPdf(-x));
  }
}

TEST(NormalLogPdfTest, MatchesLogOfPdf) {
  for (double x : {-3.0, -1.0, 0.0, 0.5, 2.0}) {
    EXPECT_NEAR(NormalLogPdf(x, 0.0, 1.0), std::log(NormalPdf(x)), 1e-12);
  }
}

TEST(NormalLogPdfTest, StableInFarTails) {
  // pdf underflows at |x| ~ 40; log pdf must stay finite and exact.
  double lp = NormalLogPdf(100.0, 0.0, 1.0);
  EXPECT_TRUE(std::isfinite(lp));
  EXPECT_NEAR(lp, -0.5 * 100.0 * 100.0 - 0.9189385332046727, 1e-9);
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_DOUBLE_EQ(NormalCdf(0.0), 0.5);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-12);
}

TEST(NormalCdfTest, TailAccuracy) {
  // erfc-based CDF keeps relative accuracy deep in the lower tail.
  EXPECT_NEAR(NormalCdf(-6.0) / 9.865876450376946e-10, 1.0, 1e-9);
  EXPECT_NEAR((1.0 - NormalCdf(6.0)) / 9.865876450376946e-10, 1.0, 1e-6);
}

TEST(NormalCdfTest, ShiftScale) {
  EXPECT_NEAR(NormalCdf(3.0, 1.0, 2.0), NormalCdf(1.0), 1e-15);
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-10);
  EXPECT_NEAR(NormalQuantile(0.8413447460685429), 1.0, 1e-10);
}

TEST(NormalQuantileTest, Endpoints) {
  EXPECT_TRUE(std::isinf(NormalQuantile(0.0)));
  EXPECT_LT(NormalQuantile(0.0), 0.0);
  EXPECT_TRUE(std::isinf(NormalQuantile(1.0)));
  EXPECT_GT(NormalQuantile(1.0), 0.0);
}

class QuantileRoundTripTest : public ::testing::TestWithParam<double> {};

TEST_P(QuantileRoundTripTest, CdfOfQuantileIsIdentity) {
  double p = GetParam();
  EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-12 * std::max(p, 1e-3));
}

TEST_P(QuantileRoundTripTest, QuantileOfCdfIsIdentity) {
  double p = GetParam();
  double x = NormalQuantile(p);
  EXPECT_NEAR(NormalQuantile(NormalCdf(x)), x,
              1e-9 * std::max(1.0, std::fabs(x)));
}

INSTANTIATE_TEST_SUITE_P(Probabilities, QuantileRoundTripTest,
                         ::testing::Values(1e-12, 1e-8, 1e-4, 0.01, 0.1, 0.25,
                                           0.5, 0.75, 0.9, 0.99, 0.9999,
                                           1.0 - 1e-8));

TEST(NormalQuantileTest, Antisymmetry) {
  for (double p : {0.01, 0.1, 0.3}) {
    EXPECT_NEAR(NormalQuantile(p), -NormalQuantile(1.0 - p), 1e-10);
  }
}

}  // namespace
}  // namespace dpaudit
