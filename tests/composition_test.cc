#include "dp/composition.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/rdp_accountant.h"

namespace dpaudit {
namespace {

TEST(SequentialComposeTest, SumsEpsilonAndDelta) {
  PrivacyParams total = SequentialCompose(
      {{1.0, 1e-5}, {0.5, 1e-5}, {0.25, 2e-5}});
  EXPECT_DOUBLE_EQ(total.epsilon, 1.75);
  EXPECT_DOUBLE_EQ(total.delta, 4e-5);
}

TEST(SequentialComposeTest, EmptyIsZero) {
  PrivacyParams total = SequentialCompose({});
  EXPECT_DOUBLE_EQ(total.epsilon, 0.0);
  EXPECT_DOUBLE_EQ(total.delta, 0.0);
}

TEST(SequentialSplitTest, SplitsEvenly) {
  StatusOr<PrivacyParams> step = SequentialSplit({3.0, 3e-4}, 30);
  ASSERT_TRUE(step.ok());
  EXPECT_DOUBLE_EQ(step->epsilon, 0.1);
  EXPECT_DOUBLE_EQ(step->delta, 1e-5);
}

TEST(SequentialSplitTest, ComposeInvertsSplit) {
  PrivacyParams total{2.2, 0.001};
  PrivacyParams step = *SequentialSplit(total, 10);
  PrivacyParams recomposed =
      SequentialCompose(std::vector<PrivacyParams>(10, step));
  EXPECT_NEAR(recomposed.epsilon, total.epsilon, 1e-12);
  EXPECT_NEAR(recomposed.delta, total.delta, 1e-12);
}

TEST(SequentialSplitTest, RejectsInvalid) {
  EXPECT_FALSE(SequentialSplit({0.0, 0.001}, 10).ok());
  EXPECT_FALSE(SequentialSplit({1.0, 0.001}, 0).ok());
}

// Section 5.2: for the same total budget, RDP composition admits much less
// noise (equivalently: for the same noise, RDP certifies a smaller epsilon
// than basic composition would).
TEST(CompositionComparisonTest, RdpBeatsSequentialForManySteps) {
  const size_t k = 30;
  const double delta = 0.001;
  const double z = 2.0;  // per-step noise multiplier
  // Basic composition: per-step epsilon from Eq. 2 at per-step delta/k.
  double per_step_delta = delta / static_cast<double>(k);
  double per_step_eps =
      std::sqrt(2.0 * std::log(1.25 / per_step_delta)) / z;
  double sequential_eps = per_step_eps * static_cast<double>(k);
  // RDP composition of the same mechanism sequence.
  RdpAccountant accountant;
  accountant.AddGaussianSteps(z, k);
  double rdp_eps = *accountant.GetEpsilon(delta);
  EXPECT_LT(rdp_eps, sequential_eps);
  EXPECT_LT(rdp_eps, 0.5 * sequential_eps);  // decisively better
}

}  // namespace
}  // namespace dpaudit
