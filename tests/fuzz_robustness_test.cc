// Robustness sweeps: every parser / deserializer in the library must turn
// arbitrary malformed input into a non-OK Status — never crash, never abort.

#include <gtest/gtest.h>

#include <vector>

#include "data/idx_format.h"
#include "io/serialization.h"
#include "nn/gradient_engine.h"
#include "tests/test_helpers.h"
#include "util/arg_parser.h"
#include "util/random.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::TinyNetwork;

std::vector<uint8_t> RandomBytes(size_t size, Rng& rng) {
  std::vector<uint8_t> bytes(size);
  for (uint8_t& b : bytes) {
    b = static_cast<uint8_t>(rng.UniformInt(256));
  }
  return bytes;
}

TEST(FuzzTest, IdxParserSurvivesRandomBytes) {
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    size_t size = rng.UniformInt(64);
    auto result = ParseIdx(RandomBytes(size, rng));
    // Random bytes essentially never form a valid stream; either way the
    // call must return, not crash.
    (void)result.ok();
  }
}

TEST(FuzzTest, IdxParserSurvivesCorruptedValidStream) {
  IdxData data;
  data.dims = {3, 4};
  data.values.assign(12, 7);
  std::vector<uint8_t> valid = *SerializeIdx(data);
  Rng rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> corrupted = valid;
    size_t flips = 1 + rng.UniformInt(4);
    for (size_t f = 0; f < flips; ++f) {
      corrupted[rng.UniformInt(corrupted.size())] ^=
          static_cast<uint8_t>(1 + rng.UniformInt(255));
    }
    (void)ParseIdx(corrupted);
    // Truncations too.
    std::vector<uint8_t> truncated(valid.begin(),
                                   valid.begin() + rng.UniformInt(
                                       valid.size()));
    (void)ParseIdx(truncated);
  }
}

TEST(FuzzTest, WeightDeserializerSurvivesRandomAndCorrupted) {
  Rng rng(3);
  Network net = TinyNetwork();
  Rng init(4);
  net.Initialize(init);
  std::vector<uint8_t> valid = *SerializeWeights(net);
  for (int trial = 0; trial < 300; ++trial) {
    Network target = TinyNetwork();
    (void)DeserializeWeights(RandomBytes(rng.UniformInt(200), rng), target);
    std::vector<uint8_t> corrupted = valid;
    corrupted[rng.UniformInt(corrupted.size())] ^= 0x40;
    (void)DeserializeWeights(corrupted, target);
    std::vector<uint8_t> truncated(valid.begin(),
                                   valid.begin() + rng.UniformInt(
                                       valid.size()));
    (void)DeserializeWeights(truncated, target);
  }
}

TEST(FuzzTest, DatasetDeserializerSurvivesRandomAndCorrupted) {
  Rng rng(5);
  Dataset d;
  d.Add(Tensor({2, 2}, {1, 2, 3, 4}), 1);
  std::vector<uint8_t> valid = *SerializeDataset(d);
  for (int trial = 0; trial < 300; ++trial) {
    (void)DeserializeDataset(RandomBytes(rng.UniformInt(200), rng));
    std::vector<uint8_t> corrupted = valid;
    corrupted[rng.UniformInt(corrupted.size())] ^= 0x11;
    (void)DeserializeDataset(corrupted);
  }
}

TEST(FuzzTest, CorruptionIsActuallyDetected) {
  // Beyond not crashing: payload corruption must not silently round-trip.
  Rng rng(6);
  Network net = TinyNetwork();
  Rng init(7);
  net.Initialize(init);
  std::vector<uint8_t> valid = *SerializeWeights(net);
  size_t silent_corruptions = 0;
  const size_t header = 20;  // corrupt only payload bytes
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> corrupted = valid;
    size_t pos = header + rng.UniformInt(corrupted.size() - header - 8);
    corrupted[pos] ^= static_cast<uint8_t>(1 + rng.UniformInt(255));
    Network target = TinyNetwork();
    if (DeserializeWeights(corrupted, target).ok()) ++silent_corruptions;
  }
  EXPECT_EQ(silent_corruptions, 0u);
}

TEST(FuzzTest, BatchLanesSurviveRaggedFinalPacks) {
  // Random (n, lanes, chunk) combinations, biased so the final pack is
  // almost always ragged (n % lanes != 0). The lane engine must neither
  // crash nor drift from the scalar reference by a single bit.
  Rng rng(9);
  Network net = TinyNetwork();
  Rng init(10);
  net.Initialize(init);
  for (int trial = 0; trial < 20; ++trial) {
    Rng data_rng(100 + trial);
    const size_t n = 1 + rng.UniformInt(29);
    Dataset d = BlobDataset(n, data_rng);
    std::vector<float> ref = net.ClippedGradientSum(d.inputs, d.labels, 1.0);

    GradientEngine::Options options;
    options.threads = 1 + rng.UniformInt(4);
    options.chunk = 1 + rng.UniformInt(8);
    options.batch_lanes = 1 + rng.UniformInt(16);
    GradientEngine engine(net, options);
    engine.SyncParams(net);
    std::vector<float> sum = engine.ClippedGradientSum(d.inputs, d.labels, 1.0);

    ASSERT_EQ(ref.size(), sum.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], sum[i])
          << "trial=" << trial << " n=" << n << " lanes=" << options.batch_lanes
          << " threads=" << options.threads << " chunk=" << options.chunk
          << " i=" << i;
    }
  }
}

TEST(FuzzTest, ArgParserSurvivesRandomTokens) {
  Rng rng(8);
  const char* fragments[] = {"--",     "--x",  "=",    "--=",   "a",
                             "--b=c",  "-9",   "--d",  "1e300", "--e=",
                             "--f==g", "\x01", "--\xff", "", "--x=1"};
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<const char*> argv = {"prog"};
    size_t count = 1 + rng.UniformInt(6);
    for (size_t i = 0; i < count; ++i) {
      argv.push_back(fragments[rng.UniformInt(std::size(fragments))]);
    }
    auto parsed = ArgParser::Parse(static_cast<int>(argv.size()),
                                   argv.data());
    if (parsed.ok()) {
      (void)parsed->GetDouble("x", 0.0);
      (void)parsed->GetBool("b", false);
      (void)parsed->CheckAllConsumed();
    }
  }
}

}  // namespace
}  // namespace dpaudit
