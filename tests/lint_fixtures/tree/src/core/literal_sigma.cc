// Constructs the mechanism from a hard-coded sigma outside dp/: bypasses
// calibration, flagged by dpaudit-mechanism-flow.
#include "dp/mech.h"

GaussianMechanism MakeDefaultMech() { return GaussianMechanism(1.5); }
