// Reaches into the restricted ledger header from outside the designated
// bridge: flagged by dpaudit-layering even though core -> obs is a legal
// layer edge.
#include "obs/ledger.h"

double NaughtyValue(const LedgerRow& row) { return row.value; }
