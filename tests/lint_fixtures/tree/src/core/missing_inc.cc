// References DeepAnswer, declared only in util/deep.h, which is two hops
// away (top.h -> mid.h -> deep.h): beyond the one-hop contract, so flagged
// by dpaudit-missing-include.
#include "util/top.h"

int UseDeep() { return DeepAnswer() + TopAnswer(); }
