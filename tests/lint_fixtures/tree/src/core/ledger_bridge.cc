// The designated bridge TU: the restrict line in ../layers.txt names this
// file, so its include of the ledger header is legal.
#include "obs/ledger.h"

double BridgeValue(const LedgerRow& row) { return row.value; }
