// Invokes the Gaussian mechanism without referencing any clip/sensitivity
// helper: the perturbation site is not visibly downstream of clipping, so
// dpaudit-mechanism-flow flags it.
#include "dp/mech.h"

void FlowBad(GaussianMechanism* mech, double* values, int n) {
  mech->Perturb(values, n);
}
