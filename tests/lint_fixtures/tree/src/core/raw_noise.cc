// Raw std::normal_distribution outside dp/ and util/random: ad-hoc noise
// bypasses the calibrated mechanism, flagged by dpaudit-mechanism-flow.
#include <random>

std::normal_distribution<double> NoiseDist();
