// The compliant counterpart of flow_bad.cc: the TU clips before it
// perturbs, so the mechanism invocation sits downstream of ClipScale.
#include "dp/mech.h"
#include "util/clip.h"

void FlowOk(GaussianMechanism* mech, double* values, int n) {
  for (int i = 0; i < n; ++i) {
    values[i] *= ClipScale(values[i], 1.0);
  }
  mech->Perturb(values, n);
}
