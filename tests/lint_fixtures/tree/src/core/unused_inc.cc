// Includes clip.h but references none of its declared symbols: flagged by
// dpaudit-unused-include.
#include "util/clip.h"

int UnusedScore() { return 3; }
