// Stand-in Gaussian mechanism; Perturb is a mechanism entry point for the
// dpaudit-mechanism-flow rule.
#pragma once

struct GaussianMechanism {
  explicit GaussianMechanism(double sigma);
  void Perturb(double* values, int n);
};
