// Stand-in for the restricted audit ledger header; see the restrict line
// in ../layers.txt.
#pragma once

struct LedgerRow {
  double value;
};
