// One half of a deliberate include cycle with cycle_b.h; the cycle is
// reported once, anchored at this file (the lexicographically smallest).
#pragma once

#include "obs/cycle_b.h"

struct CycleA {
  CycleB* peer;
};
