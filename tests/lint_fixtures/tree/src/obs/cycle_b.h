#pragma once

#include "obs/cycle_a.h"

struct CycleB {
  CycleA* peer;
};
