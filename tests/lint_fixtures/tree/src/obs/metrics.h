#pragma once

struct MetricsCounter {
  long count;
};
