// util is the bottom layer; reaching up into obs violates the matrix in
// ../layers.txt (util has no allow line at all).
#pragma once

#include "obs/metrics.h"

MetricsCounter* GlobalCounter();
