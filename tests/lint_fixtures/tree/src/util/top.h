// Top hop: a file including top.h reaches deep.h only after two hops,
// which is beyond the one-hop contract dpaudit-missing-include allows.
#pragma once

#include "util/mid.h"

inline int TopAnswer() { return MidAnswer(); }
