// The clip/sensitivity helper the mechanism-flow rule harvests: its name
// matches the Clip pattern, so a TU that perturbs without referencing it
// (or a peer) is flagged.
#pragma once

double ClipScale(double norm, double max_norm);
