// Middle hop: re-exports deep.h as part of its contract.
#pragma once

#include "util/deep.h"

inline int MidAnswer() { return DeepAnswer(); }
