// Bottom of the missing-include chain: the only declarer of DeepAnswer.
#pragma once

int DeepAnswer();
