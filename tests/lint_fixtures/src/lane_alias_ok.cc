// Fixture: compliant lane-buffer use — buffers travel through the batched
// layer API as tensors, .data() is called at the use site (call argument,
// never stored), a layer's own lane_* members stay allowed, and the audited
// escape hatch is a justified NOLINT.

#include <cstddef>
#include <vector>

namespace dpaudit {

struct Tensor {
  float* data();
  const float* data() const;
};

struct GradientWorkspace {
  Tensor lane_input;
  std::vector<Tensor> lane_acts;
};

void Kernel(const float* in, float* out);

// .data() at the use site: the pointer never outlives the statement.
void PassesAtCallSite(GradientWorkspace* ws) {
  Kernel(ws->lane_input.data(), ws->lane_acts[0].data());
}

// Handles to the tensors themselves are fine — they follow resizes.
void BindsTensors(GradientWorkspace* ws) {
  const Tensor* cur = &ws->lane_input;
  Kernel(cur->data(), ws->lane_acts[0].data());
}

struct LaneLayer {
  std::vector<float> lane_dweight_;

  // A layer touching its OWN lane scratch is the owner, not an alias.
  void Backward() {
    float* dw = lane_dweight_.data();
    Kernel(dw, dw);
  }
};

void AuditedAlias(GradientWorkspace* ws) {
  // Pointer provably consumed before the next pack touches the buffer.
  float* alias = ws->lane_input.data();  // NOLINT(dpaudit-lane-alias)
  Kernel(alias, alias);
}

}  // namespace dpaudit
