// Fixture: dpaudit-cerr must flag direct std::cerr/std::clog diagnostics.
#include <iostream>

void WarnDirectly(int code) {
  std::cerr << "warning: code " << code << "\n";
  std::clog << "note: code " << code << "\n";
}
