// Fixture: fan-out through util/thread_pool is compliant, and tokens like
// std::this_thread or thread_local must not trip the matcher.
#include <cstddef>

namespace dpaudit {
class ThreadPool;
void RunOnPool(ThreadPool& pool, size_t n);

thread_local int tls_counter = 0;

void SpawnProperly(ThreadPool& pool) {
  RunOnPool(pool, 8);
}
}  // namespace dpaudit
