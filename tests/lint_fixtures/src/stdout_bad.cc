// Fixture: dpaudit-stdout must flag library code writing to stdout.
#include <cstdio>
#include <iostream>

void PrintResult(double value) {
  std::cout << "epsilon = " << value << "\n";
  printf("epsilon = %f\n", value);
  std::fprintf(stdout, "epsilon = %f\n", value);
}
