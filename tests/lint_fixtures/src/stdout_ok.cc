// Fixture: writing to a caller-supplied stream is the compliant pattern;
// snprintf and fprintf(stderr, ...) must not trip the stdout tokens.
#include <cstdio>
#include <ostream>

void WriteResult(std::ostream& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "epsilon = %f\n", value);
  out << buffer;
}
