// Fixture: the conventional guard for src/include_guard_ok.h.
#ifndef DPAUDIT_INCLUDE_GUARD_OK_H_
#define DPAUDIT_INCLUDE_GUARD_OK_H_

namespace dpaudit {
int ProperlyGuarded();
}  // namespace dpaudit

#endif  // DPAUDIT_INCLUDE_GUARD_OK_H_
