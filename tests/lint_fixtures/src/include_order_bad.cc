// A quoted include ahead of an angled one in the same block; the canonical
// order is angled first, then quoted, each sorted. `dpaudit_lint --fix`
// rewrites this file into include_order_ok.cc's shape.
#include "util/helper.h"
#include <vector>

int UseThem();
