// Fixture: dpaudit-include-guard must flag a header with no guard at all.

namespace dpaudit {
int Unguarded();
}  // namespace dpaudit
