// Fixture: dpaudit-lane-alias must flag raw element pointers stored from
// another object's lane workspace buffers — the buffers are resized and
// overwritten on every lane pack, so the stored alias silently goes stale.

namespace dpaudit {

struct Tensor {
  float* data();
  const float* data() const;
};

struct GradientWorkspace {
  Tensor lane_input;
  Tensor lane_scratch;
};

void Consume(const float* p);

float* CachesALaneAlias(GradientWorkspace* ws) {
  float* alias = ws->lane_input.data();
  return alias;
}

void StoresThroughDotAccess(GradientWorkspace& ws) {
  const float* held = ws.lane_scratch.data();
  Consume(held);
}

struct Holder {
  const float* stale = nullptr;
  void Capture(const GradientWorkspace& ws) {
    stale = ws.lane_input.data();
  }
};

}  // namespace dpaudit
