// Fixture: knobs read through the RuntimeOptions table or the util/env.h
// accessors are compliant; the word "getenv" in strings and comments (for
// example "getenv is banned") must not trip the token matcher.
namespace dpaudit {

struct RuntimeOptions;
const RuntimeOptions& CurrentRuntimeOptions();
long EnvInt64(const char* name, long fallback);

const char* kNote = "raw getenv is banned outside core/runtime_options";

long CompliantKnob() { return EnvInt64("DPAUDIT_THREADS", 0); }

}  // namespace dpaudit
