// Fixture: bounded/checked replacements are compliant, and identifiers that
// merely contain a banned name (snprintf, my_atof) or calls named in
// strings must not be flagged.
#include <cstdio>
#include <cstdlib>

double my_atof(const char* s) { return strtod(s, nullptr); }

void Safe(char* dst, size_t n, const char* src, const char* num) {
  std::snprintf(dst, n, "%s", src);
  double parsed = strtod(num, nullptr);
  (void)parsed;
  const char* note = "sprintf( and strcpy( are banned";
  (void)note;
}
