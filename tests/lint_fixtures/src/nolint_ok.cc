// Fixture: every violation here carries a suppression, so the file must
// produce zero findings — exercising same-line NOLINT with a rule list,
// bare NOLINT, and NOLINTNEXTLINE.
#include <cstdio>
#include <iostream>
#include <random>

void Suppressed(double value) {
  std::cout << value << "\n";  // NOLINT(dpaudit-stdout)
  std::cerr << value << "\n";  // NOLINT
  // NOLINTNEXTLINE(dpaudit-rng)
  std::mt19937 engine(7);
  printf("%f %u\n", value, engine());  // NOLINT(dpaudit-stdout, dpaudit-rng)
}
