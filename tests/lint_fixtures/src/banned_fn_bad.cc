// Fixture: dpaudit-banned-fn must flag each unbounded/locale-dependent call.
#include <cstdio>
#include <cstdlib>
#include <cstring>

void Banned(char* dst, const char* src, const char* num) {
  strcpy(dst, src);
  std::strcat(dst, src);
  sprintf(dst, "%s", src);
  double parsed = atof(num);
  int parsed_int = std::atoi(num);
  (void)parsed;
  (void)parsed_int;
}
