// Fixture: diagnostics through DPAUDIT_LOG are compliant, and the word
// "cerr" inside strings/comments must not trip the matcher (std::cerr).
#define DPAUDIT_LOG(severity) DummyStream()

struct Dummy {
  template <typename T>
  Dummy& operator<<(const T&) { return *this; }
};
inline Dummy DummyStream() { return {}; }

void WarnProperly(int code) {
  DPAUDIT_LOG(WARNING) << "warning: code " << code;
}
