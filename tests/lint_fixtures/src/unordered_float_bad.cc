// Fixture: dpaudit-unordered-float must flag floating-point accumulation
// driven by unordered-container iteration order.
#include <string>
#include <unordered_map>

double SumScores(const std::unordered_map<std::string, double>& scores) {
  double total = 0.0;
  for (const auto& [name, score] : scores) {
    total += score;
  }
  return total;
}

double SumDeclaredEarlier() {
  std::unordered_map<int, double> weights;
  weights[1] = 0.5;
  double total = 0.0;
  for (const auto& entry : weights) {
    total += entry.second;
  }
  return total;
}
