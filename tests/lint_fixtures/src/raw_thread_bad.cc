// Fixture: dpaudit-raw-thread must flag raw std::thread/std::async use.
#include <future>
#include <thread>

void SpawnDirectly() {
  std::thread worker([] {});
  auto result = std::async(std::launch::async, [] { return 1; });
  (void)result.get();
  worker.join();
}
