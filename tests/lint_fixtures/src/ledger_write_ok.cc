// Fixture: going through the obs ledger API is compliant, and talking about
// the ledger by concept (without the file suffix) must not trip the matcher.
#include <string>

namespace dpaudit {
namespace obs {
struct LedgerManifest;
void InitAuditLedger(const LedgerManifest& manifest,
                     const std::string& directory);
}  // namespace obs
}  // namespace dpaudit

void EmitThroughTheApi(const dpaudit::obs::LedgerManifest& manifest) {
  dpaudit::obs::InitAuditLedger(manifest, "telemetry");
}
