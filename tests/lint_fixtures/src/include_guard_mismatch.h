// Fixture: dpaudit-include-guard must flag a guard that does not follow the
// DPAUDIT_<PATH>_H_ convention for this header's path.
#ifndef SOME_OTHER_GUARD_H
#define SOME_OTHER_GUARD_H

namespace dpaudit {
int WronglyGuarded();
}  // namespace dpaudit

#endif  // SOME_OTHER_GUARD_H
