// Fixture: dpaudit-raw-getenv must flag every direct environment read.
#include <cstdlib>

const char* AdHocKnob() { return std::getenv("DPAUDIT_SECRET_KNOB"); }

const char* UnqualifiedKnob() { return getenv("DPAUDIT_OTHER_KNOB"); }
