// Fixture: randomness drawn through util/random's Rng is compliant; the
// word "randomness" and strings like "mt19937 is banned" must not trip the
// token matcher.
namespace dpaudit {
class Rng;
double DrawGaussian(Rng& rng);

const char* kNote = "mt19937 and rand() are banned outside util/random";

double CompliantRandomness(Rng& rng) { return DrawGaussian(rng); }
}  // namespace dpaudit
