// Canonical include order: angled system headers, then quoted repo
// headers, each run sorted lexicographically.
#include <vector>

#include "util/helper.h"

int UseThem();
