// Fixture: accumulating over ordered containers is compliant, as is
// unordered iteration that only copies (no accumulation).
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

double SumScores(const std::map<std::string, double>& scores) {
  double total = 0.0;
  for (const auto& [name, score] : scores) {
    total += score;
  }
  return total;
}

std::vector<int> CopyMembers(const std::unordered_set<int>& members) {
  std::vector<int> out;
  for (const int m : members) {
    out.push_back(m);
  }
  return out;
}
