// Fixture: dpaudit-ledger-write must flag hand-rolled ledger paths outside
// src/obs/ — here a module opening run.ledger.jsonl for itself instead of
// going through the obs writer.
#include <fstream>
#include <string>

void AppendRowDirectly(const std::string& directory) {
  std::ofstream out(directory + "/run.ledger.jsonl", std::ios::app);
  out << "{\"row\":\"step\"}\n";
}
