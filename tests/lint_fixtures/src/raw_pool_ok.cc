// Fixture: compliant pool use — static ParallelFor entry points, the shared
// singleton, references/pointers, and a justified NOLINT escape for the one
// legitimate dedicated-pool owner pattern.
#include <cstddef>
#include <memory>

#include "util/thread_pool.h"

namespace dpaudit {
void FanOut(size_t n) {
  ThreadPool::ParallelFor(n, 4, [](size_t) {});
  ThreadPool& pool = SharedThreadPool();
  pool.Wait();
}

void Borrow(ThreadPool& pool, const ThreadPool* observer) {
  (void)pool;
  (void)observer;
}

struct PoolOwner {
  std::unique_ptr<ThreadPool> pool;  // holding a pointer is not construction

  PoolOwner() {
    // Worker-affine replicas need a dedicated pool with a stable width.
    pool = std::make_unique<ThreadPool>(4);  // NOLINT(dpaudit-raw-pool)
  }
};
}  // namespace dpaudit
