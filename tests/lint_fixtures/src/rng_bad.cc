// Fixture: dpaudit-rng must flag every ad-hoc randomness source.
#include <cstdlib>
#include <random>

int AdHocRandomness() {
  std::random_device rd;
  std::mt19937 engine(rd());
  std::srand(42);
  return static_cast<int>(engine()) + std::rand();
}
