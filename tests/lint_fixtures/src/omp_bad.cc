// Fixture: dpaudit-omp must flag OpenMP pragmas.
void ScaleAll(double* values, int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    values[i] *= 2.0;
  }
}
