// Fixture: dpaudit-raw-pool must flag direct ThreadPool construction —
// stack instances, temporaries, and heap allocation all spawn/join a private
// worker set instead of reusing the shared pool.
#include <memory>

#include "util/thread_pool.h"

namespace dpaudit {
void ChurnsAStackPool() {
  ThreadPool pool(4);
  pool.Wait();
}

void ChurnsAHeapPool() {
  auto owned = std::make_unique<ThreadPool>(8);
  ThreadPool* leaked = new ThreadPool(2);
  (void)owned;
  (void)leaked;
}
}  // namespace dpaudit
