// Fixture: other pragmas are compliant, and "omp" inside identifiers
// (Compare, compute) or strings must not trip the token matcher.
#pragma GCC diagnostic push
#pragma GCC diagnostic pop

const char* kNote = "#pragma omp is banned";

int ComputeCompare(int a, int b) { return a < b ? a : b; }
