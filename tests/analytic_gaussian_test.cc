#include "dp/analytic_gaussian.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/calibration.h"

namespace dpaudit {
namespace {

TEST(AnalyticGaussianDeltaTest, DecreasesInSigma) {
  double prev = 1.0;
  for (double sigma : {0.3, 0.5, 1.0, 2.0, 5.0}) {
    double delta = *AnalyticGaussianDelta(sigma, 1.0, 1.0);
    EXPECT_LT(delta, prev);
    prev = delta;
  }
}

TEST(AnalyticGaussianDeltaTest, DecreasesInEpsilon) {
  double prev = 1.0;
  for (double eps : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    double delta = *AnalyticGaussianDelta(1.0, eps, 1.0);
    EXPECT_LT(delta, prev);
    prev = delta;
  }
}

TEST(AnalyticGaussianDeltaTest, KnownValueAtEpsilonZero) {
  // At eps = 0 the expression reduces to Phi(a) - Phi(-a) with a = Df/2sigma:
  // the total variation distance between the two Gaussians.
  double delta = *AnalyticGaussianDelta(1.0, 0.0, 1.0);
  EXPECT_NEAR(delta, 2.0 * 0.6914624612740131 - 1.0, 1e-10);
}

TEST(AnalyticGaussianSigmaTest, SatisfiesTheDeltaConstraintTightly) {
  for (double eps : {0.5, 1.0, 2.2, 4.6}) {
    for (double delta : {1e-3, 1e-6}) {
      double sigma = *AnalyticGaussianSigma({eps, delta}, 1.0);
      double achieved = *AnalyticGaussianDelta(sigma, eps, 1.0);
      EXPECT_LE(achieved, delta * 1.0001);
      // Tight: 1% less noise must violate delta.
      double violated = *AnalyticGaussianDelta(0.99 * sigma, eps, 1.0);
      EXPECT_GT(violated, delta);
    }
  }
}

TEST(AnalyticGaussianSigmaTest, NeverWorseThanClassicCalibration) {
  // The exact characterization dominates Eq. 1 wherever Eq. 1 applies.
  for (double eps : {0.1, 0.5, 1.0, 2.2, 4.6}) {
    for (double delta : {1e-3, 1e-5, 1e-8}) {
      double classic = *GaussianSigma({eps, delta}, 1.0);
      double analytic = *AnalyticGaussianSigma({eps, delta}, 1.0);
      EXPECT_LE(analytic, classic * 1.0001)
          << "eps=" << eps << " delta=" << delta;
    }
  }
}

TEST(AnalyticGaussianSigmaTest, SavingsAreSubstantialAcrossTheGrid) {
  // Eq. 1 overshoots the exact requirement everywhere; the savings are
  // largest in the small-epsilon regime where DPSGD budgets actually live.
  for (double eps : {0.08, 0.5, 1.1, 2.2, 4.6}) {
    double ratio = *GaussianSigma({eps, 1e-5}, 1.0) /
                   *AnalyticGaussianSigma({eps, 1e-5}, 1.0);
    EXPECT_GT(ratio, 1.05) << "eps=" << eps;
  }
  double ratio_small = *GaussianSigma({0.5, 1e-5}, 1.0) /
                       *AnalyticGaussianSigma({0.5, 1e-5}, 1.0);
  double ratio_large = *GaussianSigma({4.6, 1e-5}, 1.0) /
                       *AnalyticGaussianSigma({4.6, 1e-5}, 1.0);
  EXPECT_GT(ratio_small, ratio_large);
  EXPECT_GT(ratio_small, 1.3);
}

TEST(AnalyticGaussianSigmaTest, ScalesLinearlyWithSensitivity) {
  double s1 = *AnalyticGaussianSigma({1.0, 1e-4}, 1.0);
  double s3 = *AnalyticGaussianSigma({1.0, 1e-4}, 3.0);
  EXPECT_NEAR(s3, 3.0 * s1, 1e-6 * s3);
}

class AnalyticRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AnalyticRoundTrip, EpsilonInvertsSigma) {
  auto [eps, delta] = GetParam();
  double sigma = *AnalyticGaussianSigma({eps, delta}, 1.0);
  double recovered = *AnalyticGaussianEpsilon(sigma, delta, 1.0);
  EXPECT_NEAR(recovered, eps, 1e-4 * eps + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AnalyticRoundTrip,
    ::testing::Combine(::testing::Values(0.08, 1.1, 2.2, 4.6, 8.0),
                       ::testing::Values(1e-3, 1e-6)));

TEST(AnalyticGaussianEpsilonTest, MoreNoiseLessEpsilon) {
  double high = *AnalyticGaussianEpsilon(0.5, 1e-5, 1.0);
  double low = *AnalyticGaussianEpsilon(5.0, 1e-5, 1.0);
  EXPECT_GT(high, low);
}

TEST(AnalyticGaussianEpsilonTest, HugeNoiseAuditsNearZero) {
  EXPECT_LT(*AnalyticGaussianEpsilon(1e4, 1e-2, 1.0), 1e-3);
}

TEST(AnalyticGaussianTest, RejectsInvalidInputs) {
  EXPECT_FALSE(AnalyticGaussianDelta(0.0, 1.0, 1.0).ok());
  EXPECT_FALSE(AnalyticGaussianDelta(1.0, -1.0, 1.0).ok());
  EXPECT_FALSE(AnalyticGaussianDelta(1.0, 1.0, 0.0).ok());
  EXPECT_FALSE(AnalyticGaussianSigma({0.0, 1e-5}, 1.0).ok());
  EXPECT_FALSE(AnalyticGaussianSigma({1.0, 0.0}, 1.0).ok());
  EXPECT_FALSE(AnalyticGaussianEpsilon(1.0, 1.0, 1.0).ok());
}

}  // namespace
}  // namespace dpaudit
