#include "core/auditor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/scores.h"
#include "dp/rdp_accountant.h"
#include "tests/test_helpers.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::ExtremeBoundedNeighbor;
using testing_helpers::TinyNetwork;

TEST(EpsilonFromSensitivitiesTest, ConstantRatioMatchesAccountant) {
  // sigma_i / LS_i constant at z: epsilon' equals the plain accountant value.
  const double z = 1.5;
  const double delta = 1e-4;
  const size_t k = 30;
  std::vector<double> sigmas(k, 3.0 * z);
  std::vector<double> ls(k, 3.0);
  double expected = *ComposedEpsilonForNoiseMultiplier(z, delta, k);
  StatusOr<double> actual = EpsilonFromSensitivities(sigmas, ls, delta);
  ASSERT_TRUE(actual.ok());
  EXPECT_NEAR(*actual, expected, 1e-10);
}

TEST(EpsilonFromSensitivitiesTest, SmallerSensitivityMeansSmallerEpsilon) {
  // When the factual LS is far below the noise reference, the model leaks
  // less than specified: epsilon' < epsilon (the Figure 8 GS curves).
  const double delta = 1e-4;
  std::vector<double> sigmas(30, 6.0);  // noise scaled to GS = 2C = 6
  std::vector<double> ls_tight(30, 6.0);
  std::vector<double> ls_loose(30, 1.5);  // factual difference much smaller
  double eps_tight = *EpsilonFromSensitivities(sigmas, ls_tight, delta);
  double eps_loose = *EpsilonFromSensitivities(sigmas, ls_loose, delta);
  EXPECT_LT(eps_loose, eps_tight);
}

TEST(EpsilonFromSensitivitiesTest, ZeroSensitivityStepsContributeNothing) {
  const double delta = 1e-4;
  std::vector<double> sigmas = {2.0, 2.0, 2.0};
  std::vector<double> ls_all = {1.0, 1.0, 1.0};
  std::vector<double> ls_some = {1.0, 0.0, 1.0};
  double eps_all = *EpsilonFromSensitivities(sigmas, ls_all, delta);
  double eps_some = *EpsilonFromSensitivities(sigmas, ls_some, delta);
  EXPECT_LT(eps_some, eps_all);
  // All-zero: no distinguishable release at all.
  EXPECT_DOUBLE_EQ(
      *EpsilonFromSensitivities(sigmas, {0.0, 0.0, 0.0}, delta), 0.0);
}

TEST(EpsilonFromSensitivitiesTest, RejectsBadInput) {
  EXPECT_FALSE(EpsilonFromSensitivities({1.0}, {1.0, 2.0}, 1e-4).ok());
  EXPECT_FALSE(EpsilonFromSensitivities({}, {}, 1e-4).ok());
  EXPECT_FALSE(EpsilonFromSensitivities({0.0}, {1.0}, 1e-4).ok());
  EXPECT_FALSE(EpsilonFromSensitivities({1.0}, {1.0}, 0.0).ok());
}

TEST(EpsilonFromMaxBeliefTest, InvertsRhoBeta) {
  for (double eps : {0.5, 1.1, 2.2, 4.6}) {
    double belief = *RhoBeta(eps);
    EXPECT_NEAR(*EpsilonFromMaxBelief(belief), eps, 1e-9);
  }
}

TEST(EpsilonFromMaxBeliefTest, HalfOrLessAuditsToZero) {
  EXPECT_DOUBLE_EQ(*EpsilonFromMaxBelief(0.5), 0.0);
  EXPECT_DOUBLE_EQ(*EpsilonFromMaxBelief(0.3), 0.0);
}

TEST(EpsilonFromMaxBeliefTest, RejectsDegenerate) {
  EXPECT_FALSE(EpsilonFromMaxBelief(0.0).ok());
  EXPECT_FALSE(EpsilonFromMaxBelief(1.0).ok());
}

TEST(EpsilonFromAdvantageTest, InvertsRhoAlpha) {
  const double delta = 0.001;
  for (double eps : {0.5, 1.1, 2.2, 4.6}) {
    double adv = *RhoAlpha(eps, delta);
    EXPECT_NEAR(*EpsilonFromAdvantage(adv, delta), eps, 1e-7);
  }
}

TEST(EpsilonFromAdvantageTest, NonPositiveAdvantageAuditsToZero) {
  EXPECT_DOUBLE_EQ(*EpsilonFromAdvantage(0.0, 0.001), 0.0);
  EXPECT_DOUBLE_EQ(*EpsilonFromAdvantage(-0.2, 0.001), 0.0);
}

TEST(EpsilonFromAdvantageTest, CertainIdentificationAuditsToInfinity) {
  // All trials won: no finite epsilon is consistent with the observation.
  auto eps = EpsilonFromAdvantage(1.0, 0.001);
  ASSERT_TRUE(eps.ok());
  EXPECT_TRUE(std::isinf(*eps));
  EXPECT_FALSE(EpsilonFromAdvantage(1.5, 0.001).ok());
}

TEST(EpsilonIntervalTest, BracketsThePointEstimate) {
  auto interval = EpsilonIntervalFromWins(70, 100, 0.001);
  ASSERT_TRUE(interval.ok()) << interval.status();
  EXPECT_LE(interval->lo, interval->point);
  EXPECT_LE(interval->point, interval->hi);
  EXPECT_GT(interval->hi, 0.0);
}

TEST(EpsilonIntervalTest, ShrinksWithMoreTrials) {
  auto narrow = EpsilonIntervalFromWins(700, 1000, 0.001);
  auto wide = EpsilonIntervalFromWins(7, 10, 0.001);
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_LT(narrow->hi - narrow->lo, wide->hi - wide->lo);
}

TEST(EpsilonIntervalTest, ChanceLevelCoversZero) {
  // 50/100 wins: the interval must include epsilon' = 0.
  auto interval = EpsilonIntervalFromWins(50, 100, 0.001);
  ASSERT_TRUE(interval.ok());
  EXPECT_DOUBLE_EQ(interval->lo, 0.0);
  EXPECT_DOUBLE_EQ(interval->point, 0.0);
  EXPECT_GT(interval->hi, 0.0);
}

TEST(EpsilonIntervalTest, CertainWinsGiveFiniteLowerBound) {
  // 20/20 wins: the point estimate is infinite but the Wilson lower bound
  // stays below 1, so the interval's lo is finite and positive — the
  // defensible claim from a perfect finite-sample attack.
  auto interval = EpsilonIntervalFromWins(20, 20, 0.001);
  ASSERT_TRUE(interval.ok());
  EXPECT_GT(interval->lo, 0.0);
  EXPECT_TRUE(std::isfinite(interval->lo));
  EXPECT_TRUE(std::isinf(interval->point));
}

TEST(EpsilonIntervalTest, RejectsBadInput) {
  EXPECT_FALSE(EpsilonIntervalFromWins(5, 0, 0.001).ok());
  EXPECT_FALSE(EpsilonIntervalFromWins(11, 10, 0.001).ok());
  EXPECT_FALSE(EpsilonIntervalFromWins(5, 10, 0.0).ok());
}

TEST(EpsilonIntervalTest, SummaryConvenienceMatchesManualCount) {
  DiExperimentSummary summary;
  DiTrialResult win;
  win.trained_on_d = true;
  win.adversary_says_d = true;
  DiTrialResult loss = win;
  loss.adversary_says_d = false;
  summary.trials = {win, win, win, loss};
  auto from_summary = EpsilonIntervalFromAdvantage(summary, 0.001);
  auto manual = EpsilonIntervalFromWins(3, 4, 0.001);
  ASSERT_TRUE(from_summary.ok());
  ASSERT_TRUE(manual.ok());
  EXPECT_DOUBLE_EQ(from_summary->lo, manual->lo);
  EXPECT_DOUBLE_EQ(from_summary->hi, manual->hi);
}

TEST(AuditExperimentTest, EndToEndOnRealTrials) {
  Rng rng(1);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 6.0f);
  DiExperimentConfig config;
  config.dpsgd.epochs = 5;
  config.dpsgd.learning_rate = 0.05;
  config.dpsgd.clip_norm = 1.0;
  config.dpsgd.noise_multiplier = 2.0;
  config.repetitions = 10;
  config.seed = 5;
  auto summary = RunDiExperiment(net, d, d_prime, config);
  ASSERT_TRUE(summary.ok());
  auto report = AuditExperiment(*summary, /*delta=*/0.01);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->epsilon_from_sensitivities, 0.0);
  EXPECT_GE(report->epsilon_from_belief, 0.0);
  EXPECT_GE(report->epsilon_from_advantage, 0.0);
  EXPECT_TRUE(std::isfinite(report->epsilon_from_sensitivities));
}

}  // namespace
}  // namespace dpaudit
