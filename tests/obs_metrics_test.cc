// Tests for the obs metrics registry: exact aggregation under concurrency,
// distribution quantiles consistent with stats/, and registry scrape shape.

#include "obs/metrics.h"

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/telemetry.h"
#include "stats/summary.h"

namespace dpaudit {
namespace obs {
namespace {

class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetForTest();
    EnableTelemetryForTest(true);
  }
  void TearDown() override {
    EnableTelemetryForTest(false);
    MetricsRegistry::Global().ResetForTest();
  }
};

TEST_F(ObsMetricsTest, CounterAggregatesExactlyAcrossThreads) {
  Counter& counter = MetricsRegistry::Global().GetCounter("test_total");
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (size_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST_F(ObsMetricsTest, CounterAddN) {
  Counter& counter = MetricsRegistry::Global().GetCounter("addn_total");
  counter.Add(5);
  counter.Add(7);
  EXPECT_EQ(counter.Value(), 12u);
}

TEST_F(ObsMetricsTest, GetCounterReturnsSameInstance) {
  Counter& a = MetricsRegistry::Global().GetCounter("same");
  Counter& b = MetricsRegistry::Global().GetCounter("same");
  EXPECT_EQ(&a, &b);
  a.Add();
  EXPECT_EQ(b.Value(), 1u);
}

TEST_F(ObsMetricsTest, GaugeLastWriteWins) {
  Gauge& gauge = MetricsRegistry::Global().GetGauge("g");
  gauge.Set(1.5);
  gauge.Set(-3.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), -3.25);
}

TEST_F(ObsMetricsTest, DistributionSummaryMatchesWelfordExactly) {
  DistributionMetric& dist =
      MetricsRegistry::Global().GetDistribution("d", 0.0, 100.0, 50);
  RunningSummary expected;
  for (int i = 0; i < 1000; ++i) {
    double x = static_cast<double>(i % 100);
    dist.Record(x);
    expected.Add(x);
  }
  DistributionMetric::Snapshot snap = dist.Snap();
  EXPECT_EQ(snap.summary.count(), expected.count());
  EXPECT_DOUBLE_EQ(snap.summary.mean(), expected.mean());
  EXPECT_DOUBLE_EQ(snap.summary.min(), expected.min());
  EXPECT_DOUBLE_EQ(snap.summary.max(), expected.max());
}

TEST_F(ObsMetricsTest, DistributionQuantilesMatchHistogramSketch) {
  // Same values through the metric and through a reference stats/ histogram:
  // the metric's quantiles must be exactly the sketch's quantiles.
  DistributionMetric& dist =
      MetricsRegistry::Global().GetDistribution("q", 0.0, 1000.0, 100);
  Histogram reference(0.0, 1000.0, 100);
  for (int i = 0; i < 10000; ++i) {
    double x = static_cast<double>((i * 7919) % 1000);
    dist.Record(x);
    reference.Add(x);
  }
  DistributionMetric::Snapshot snap = dist.Snap();
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(snap.bins.ApproxQuantile(q), reference.ApproxQuantile(q))
        << "q=" << q;
  }
  // And the sketch itself is within one bin width of the true quantile of
  // the uniform-ish stream.
  EXPECT_NEAR(snap.bins.ApproxQuantile(0.5), 500.0, 20.0);
}

TEST_F(ObsMetricsTest, DistributionConcurrentRecordsAllCounted) {
  DistributionMetric& dist =
      MetricsRegistry::Global().GetDistribution("c", 0.0, 1.0, 10);
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dist, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        dist.Record(static_cast<double>((t + i) % 10) / 10.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(dist.Snap().summary.count(), kThreads * kPerThread);
}

TEST_F(ObsMetricsTest, SnapshotSortedAndTyped) {
  MetricsRegistry::Global().GetCounter("b_total").Add(2);
  MetricsRegistry::Global().GetCounter("a_total").Add(1);
  MetricsRegistry::Global().GetGauge("z_gauge").Set(4.0);
  MetricsRegistry::Global().GetDistribution("m_dist", 0.0, 1.0, 4).Record(0.5);
  std::vector<MetricSnapshot> snaps = MetricsRegistry::Global().Snapshot();
  ASSERT_EQ(snaps.size(), 4u);
  EXPECT_EQ(snaps[0].name, "a_total");
  EXPECT_EQ(snaps[0].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_DOUBLE_EQ(snaps[0].value, 1.0);
  EXPECT_EQ(snaps[1].name, "b_total");
  EXPECT_EQ(snaps[2].name, "z_gauge");
  EXPECT_EQ(snaps[2].kind, MetricSnapshot::Kind::kGauge);
  EXPECT_EQ(snaps[3].name, "m_dist");
  EXPECT_EQ(snaps[3].kind, MetricSnapshot::Kind::kDistribution);
  EXPECT_EQ(snaps[3].summary.count(), 1u);
}

TEST_F(ObsMetricsTest, MacroNoOpWhenDisabled) {
  EnableTelemetryForTest(false);
  DPAUDIT_METRIC_COUNT("disabled_total", 1);
  EnableTelemetryForTest(true);
  // The counter was never created: the registry stayed empty.
  EXPECT_TRUE(MetricsRegistry::Global().Snapshot().empty());
  DPAUDIT_METRIC_COUNT("disabled_total", 1);
  ASSERT_EQ(MetricsRegistry::Global().Snapshot().size(), 1u);
  EXPECT_DOUBLE_EQ(MetricsRegistry::Global().Snapshot()[0].value, 1.0);
}

TEST_F(ObsMetricsTest, PrometheusExpositionShape) {
  MetricsRegistry::Global().GetCounter("dpaudit_things_total").Add(3);
  MetricsRegistry::Global()
      .GetGauge("dpaudit_build_info{binary=\"t\",simd=\"scalar\"}")
      .Set(1.0);
  std::ostringstream os;
  WritePrometheus(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# TYPE dpaudit_build_info gauge"), std::string::npos);
  EXPECT_NE(out.find("dpaudit_build_info{binary=\"t\",simd=\"scalar\"} 1"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE dpaudit_things_total counter"),
            std::string::npos);
  EXPECT_NE(out.find("dpaudit_things_total 3"), std::string::npos);
}

TEST_F(ObsMetricsTest, JsonlRoundTripsThroughPrometheusRenderer) {
  MetricsRegistry::Global().GetCounter("dpaudit_rt_total").Add(7);
  MetricsRegistry::Global().GetGauge("dpaudit_rt_gauge").Set(2.5);
  MetricsRegistry::Global()
      .GetDistribution("dpaudit_rt_us", 0.0, 100.0, 10)
      .Record(42.0);
  std::ostringstream jsonl;
  WriteJsonl(jsonl);
  std::istringstream in(jsonl.str());
  std::ostringstream prom;
  Status st = RenderPrometheusFromJsonl(in, prom);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const std::string out = prom.str();
  EXPECT_NE(out.find("dpaudit_rt_total 7"), std::string::npos);
  EXPECT_NE(out.find("dpaudit_rt_gauge 2.5"), std::string::npos);
  EXPECT_NE(out.find("dpaudit_rt_us_count 1"), std::string::npos);
}

TEST_F(ObsMetricsTest, MalformedJsonlRejected) {
  std::istringstream in("{\"nope\":1}\n");
  std::ostringstream out;
  Status st = RenderPrometheusFromJsonl(in, out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::istringstream empty("");
  Status st2 = RenderPrometheusFromJsonl(empty, out);
  EXPECT_EQ(st2.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace obs
}  // namespace dpaudit
