// Tests for the Chrome/Perfetto trace export: complete ("ph":"X") events
// from the per-thread span event buffers, well-formed JSON (balanced
// braces/brackets outside strings), one event per span visit, and a clean
// empty export when nothing was recorded.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/span.h"
#include "obs/telemetry.h"
#include "util/thread_pool.h"

namespace dpaudit {
namespace obs {
namespace {

class TraceExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SpanRegistry::Global().ResetForTest();
    EnableTelemetryForTest(true);
  }
  void TearDown() override {
    EnableTelemetryForTest(false);
    SpanRegistry::Global().ResetForTest();
  }
};

std::string Export() {
  std::ostringstream out;
  WriteTraceJson(out);
  return out.str();
}

/// Quote-aware structural balance check: '{'/'}' and '['/']' must balance
/// outside string literals, and the document must carry the traceEvents key.
void ExpectWellFormed(const std::string& json) {
  long braces = 0;
  long brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST_F(TraceExportTest, EmptyExportIsWellFormedWithProcessMetadata) {
  const std::string json = Export();
  ExpectWellFormed(json);
  // The metadata event is always present, so the array is never empty.
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(TraceExportTest, OneCompleteEventPerSpanVisit) {
  {
    DPAUDIT_SPAN("export_outer");
    { DPAUDIT_SPAN("export_inner"); }
    { DPAUDIT_SPAN("export_inner"); }
  }
  const std::string json = Export();
  ExpectWellFormed(json);

  size_t complete_events = 0;
  for (size_t pos = 0;
       (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos;
       pos += 1) {
    ++complete_events;
  }
  EXPECT_EQ(complete_events, 3u);
  EXPECT_NE(json.find("\"name\":\"export_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"export_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"dpaudit\""), std::string::npos);
  // Every complete event needs ts and dur for the viewer's layout.
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceExportTest, PoolWorkersGetDistinctThreadIds) {
  ThreadPool::ParallelForChunked(64, /*threads=*/4, /*grain=*/1,
                                 [&](size_t) {
    DPAUDIT_SPAN("export_task");
  });
  uint64_t dropped = 0;
  const std::vector<SpanEvent> events = CollectSpanEvents(&dropped);
  EXPECT_EQ(dropped, 0u);
  size_t task_events = 0;
  for (const SpanEvent& event : events) {
    if (std::string(event.name) == "export_task") ++task_events;
  }
  EXPECT_EQ(task_events, 64u);
  ExpectWellFormed(Export());
}

TEST_F(TraceExportTest, DisabledTelemetryRecordsNoEvents) {
  EnableTelemetryForTest(false);
  { DPAUDIT_SPAN("export_disabled"); }
  const std::string json = Export();
  EXPECT_EQ(json.find("export_disabled"), std::string::npos);
  ExpectWellFormed(json);
}

}  // namespace
}  // namespace obs
}  // namespace dpaudit
