// Tests for scoped phase spans: nesting, reentrancy, disabled no-op, and
// span-context propagation across thread-pool tasks.

#include "obs/span.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/thread_pool.h"

namespace dpaudit {
namespace obs {
namespace {

class ObsSpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SpanRegistry::Global().ResetForTest();
    MetricsRegistry::Global().ResetForTest();
    EnableTelemetryForTest(true);
  }
  void TearDown() override {
    EnableTelemetryForTest(false);
    SpanRegistry::Global().ResetForTest();
    MetricsRegistry::Global().ResetForTest();
  }

  static const SpanRegistry::Stat* Find(
      const std::vector<SpanRegistry::Stat>& stats, const std::string& path) {
    for (const SpanRegistry::Stat& s : stats) {
      if (s.path == path) return &s;
    }
    return nullptr;
  }
};

TEST_F(ObsSpanTest, NestedScopesFormPaths) {
  {
    DPAUDIT_SPAN("outer");
    {
      DPAUDIT_SPAN("inner");
    }
    {
      DPAUDIT_SPAN("inner");
    }
  }
  std::vector<SpanRegistry::Stat> stats = SpanRegistry::Global().Collect();
  const SpanRegistry::Stat* outer = Find(stats, "outer");
  const SpanRegistry::Stat* inner = Find(stats, "outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->count, 2u);
  EXPECT_EQ(inner->depth, 1u);
  // The two visits to the same phase aggregate into one node; the parent's
  // total covers the children.
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner->total_ns);
  EXPECT_EQ(inner->self_ns, inner->total_ns);
}

TEST_F(ObsSpanTest, ReentrantSpanGetsItsOwnChildNode) {
  {
    DPAUDIT_SPAN("phase");
    {
      DPAUDIT_SPAN("phase");
    }
  }
  std::vector<SpanRegistry::Stat> stats = SpanRegistry::Global().Collect();
  const SpanRegistry::Stat* top = Find(stats, "phase");
  const SpanRegistry::Stat* nested = Find(stats, "phase/phase");
  ASSERT_NE(top, nullptr);
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(top->count, 1u);
  EXPECT_EQ(nested->count, 1u);
}

TEST_F(ObsSpanTest, CurrentContextTracksScope) {
  EXPECT_EQ(CurrentSpanContext(), nullptr);
  {
    DPAUDIT_SPAN("a");
    SpanContext a = CurrentSpanContext();
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->name(), "a");
    {
      DPAUDIT_SPAN("b");
      SpanContext b = CurrentSpanContext();
      ASSERT_NE(b, nullptr);
      EXPECT_EQ(b->name(), "b");
      EXPECT_EQ(b->parent(), a);
    }
    EXPECT_EQ(CurrentSpanContext(), a);
  }
  EXPECT_EQ(CurrentSpanContext(), nullptr);
}

TEST_F(ObsSpanTest, ExchangeRestoresPreviousContext) {
  DPAUDIT_SPAN("outer");
  SpanContext outer = CurrentSpanContext();
  SpanContext prev = ExchangeSpanContext(nullptr);
  EXPECT_EQ(prev, outer);
  EXPECT_EQ(CurrentSpanContext(), nullptr);
  ExchangeSpanContext(prev);
  EXPECT_EQ(CurrentSpanContext(), outer);
}

TEST_F(ObsSpanTest, DisabledSpanIsNoOp) {
  EnableTelemetryForTest(false);
  {
    DPAUDIT_SPAN("ghost");
    EXPECT_EQ(CurrentSpanContext(), nullptr);
  }
  EnableTelemetryForTest(true);
  EXPECT_TRUE(SpanRegistry::Global().Collect().empty());
  EXPECT_EQ(SpanRegistry::Global().RootTotalNs(), 0u);
}

TEST_F(ObsSpanTest, SiblingsSortedBySelfTimeDescending) {
  // Visit "slow" many more times than "fast" so its accumulated self time
  // dominates deterministically.
  for (int i = 0; i < 200; ++i) {
    DPAUDIT_SPAN("slow");
    volatile uint64_t sink = 0;
    for (int j = 0; j < 1000; ++j) sink = sink + j;
  }
  {
    DPAUDIT_SPAN("fast");
  }
  std::vector<SpanRegistry::Stat> stats = SpanRegistry::Global().Collect();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].path, "slow");
  EXPECT_EQ(stats[1].path, "fast");
  EXPECT_GE(stats[0].self_ns, stats[1].self_ns);
}

TEST_F(ObsSpanTest, PoolTasksNestUnderSchedulingSpan) {
  {
    DPAUDIT_SPAN("scheduler");
    ThreadPool pool(4);
    for (int i = 0; i < 32; ++i) {
      pool.Schedule([] { DPAUDIT_SPAN("worker_phase"); });
    }
    pool.Wait();
  }
  std::vector<SpanRegistry::Stat> stats = SpanRegistry::Global().Collect();
  const SpanRegistry::Stat* nested = Find(stats, "scheduler/worker_phase");
  ASSERT_NE(nested, nullptr) << "pool task did not adopt the scheduler span";
  EXPECT_EQ(nested->count, 32u);
  EXPECT_EQ(Find(stats, "worker_phase"), nullptr)
      << "worker span attached to the root instead of the scheduler";
}

TEST_F(ObsSpanTest, ParallelForPropagatesContextToo) {
  {
    DPAUDIT_SPAN("fanout");
    ThreadPool::ParallelFor(16, 4, [](size_t) {
      DPAUDIT_SPAN("body");
    });
  }
  std::vector<SpanRegistry::Stat> stats = SpanRegistry::Global().Collect();
  const SpanRegistry::Stat* body = Find(stats, "fanout/body");
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->count, 16u);
}

TEST_F(ObsSpanTest, PoolHooksRecordQueueAndExecuteTimings) {
  {
    DPAUDIT_SPAN("timed");
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) pool.Schedule([] {});
    pool.Wait();
  }
  std::vector<MetricSnapshot> snaps = MetricsRegistry::Global().Snapshot();
  bool saw_queue = false;
  bool saw_execute = false;
  for (const MetricSnapshot& s : snaps) {
    if (s.name == "dpaudit_pool_queue_us") {
      saw_queue = true;
      EXPECT_EQ(s.summary.count(), 8u);
    }
    if (s.name == "dpaudit_pool_execute_us") {
      saw_execute = true;
      EXPECT_EQ(s.summary.count(), 8u);
    }
  }
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_execute);
}

TEST_F(ObsSpanTest, RootTotalCoversTopLevelSpans) {
  {
    DPAUDIT_SPAN("a");
  }
  {
    DPAUDIT_SPAN("b");
  }
  std::vector<SpanRegistry::Stat> stats = SpanRegistry::Global().Collect();
  uint64_t sum = 0;
  for (const SpanRegistry::Stat& s : stats) {
    if (s.depth == 0) sum += s.total_ns;
  }
  EXPECT_EQ(SpanRegistry::Global().RootTotalNs(), sum);
}

}  // namespace
}  // namespace obs
}  // namespace dpaudit
