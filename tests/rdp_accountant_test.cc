#include "dp/rdp_accountant.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace dpaudit {
namespace {

TEST(GaussianRdpTest, ClosedForm) {
  // eps_RDP(alpha) = alpha Df^2 / (2 sigma^2)  (Eq. 3).
  EXPECT_DOUBLE_EQ(GaussianRdpEpsilon(2.0, 1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(GaussianRdpEpsilon(4.0, 2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(GaussianRdpEpsilon(4.0, 2.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(GaussianRdpEpsilonFromNoiseMultiplier(3.0, 1.5),
                   3.0 / (2.0 * 2.25));
}

TEST(RdpAccountantTest, SingleStepMatchesManualMinimization) {
  const double z = 1.3;
  const double delta = 1e-5;
  RdpAccountant accountant;
  accountant.AddGaussianSteps(z);
  double expected = std::numeric_limits<double>::infinity();
  for (double alpha : accountant.orders()) {
    double eps = alpha / (2.0 * z * z) + std::log(1.0 / delta) / (alpha - 1.0);
    expected = std::min(expected, eps);
  }
  EXPECT_NEAR(*accountant.GetEpsilon(delta), expected, 1e-12);
}

TEST(RdpAccountantTest, CompositionIsAdditiveInRdp) {
  RdpAccountant one;
  one.AddGaussianSteps(1.0, 1);
  RdpAccountant ten;
  ten.AddGaussianSteps(1.0, 10);
  for (size_t i = 0; i < one.orders().size(); ++i) {
    EXPECT_NEAR(ten.accumulated_rdp()[i], 10.0 * one.accumulated_rdp()[i],
                1e-12);
  }
  EXPECT_EQ(ten.steps(), 10u);
}

TEST(RdpAccountantTest, EpsilonGrowsSublinearlyInSteps) {
  // RDP composition of k Gaussian steps costs ~sqrt(k), far below the k of
  // basic composition — the Section 5.2 claim.
  const double delta = 1e-5;
  RdpAccountant one;
  one.AddGaussianSteps(2.0, 1);
  RdpAccountant hundred;
  hundred.AddGaussianSteps(2.0, 100);
  double eps1 = *one.GetEpsilon(delta);
  double eps100 = *hundred.GetEpsilon(delta);
  EXPECT_GT(eps100, eps1);
  EXPECT_LT(eps100, 100.0 * eps1);
  EXPECT_LT(eps100, 25.0 * eps1);  // strictly sublinear
}

TEST(RdpAccountantTest, MoreNoiseLessEpsilon) {
  const double delta = 1e-5;
  RdpAccountant low_noise;
  low_noise.AddGaussianSteps(0.8, 30);
  RdpAccountant high_noise;
  high_noise.AddGaussianSteps(3.0, 30);
  EXPECT_GT(*low_noise.GetEpsilon(delta), *high_noise.GetEpsilon(delta));
}

TEST(RdpAccountantTest, AddRdpHeterogeneousSteps) {
  RdpAccountant a;
  a.AddGaussianSteps(1.0);
  a.AddGaussianSteps(2.0);
  RdpAccountant b;
  std::vector<double> rdp1;
  std::vector<double> rdp2;
  for (double alpha : b.orders()) {
    rdp1.push_back(GaussianRdpEpsilonFromNoiseMultiplier(alpha, 1.0));
    rdp2.push_back(GaussianRdpEpsilonFromNoiseMultiplier(alpha, 2.0));
  }
  b.AddRdp(rdp1);
  b.AddRdp(rdp2);
  EXPECT_NEAR(*a.GetEpsilon(1e-5), *b.GetEpsilon(1e-5), 1e-12);
}

TEST(RdpAccountantTest, GetDeltaInvertsGetEpsilon) {
  RdpAccountant accountant;
  accountant.AddGaussianSteps(1.5, 30);
  const double delta = 1e-4;
  double eps = *accountant.GetEpsilon(delta);
  double recovered_delta = *accountant.GetDelta(eps);
  EXPECT_LE(recovered_delta, delta * 1.0001);
}

TEST(RdpAccountantTest, OptimalOrderIsInGrid) {
  RdpAccountant accountant;
  accountant.AddGaussianSteps(1.1, 30);
  double order = *accountant.GetOptimalOrder(1e-5);
  bool found = false;
  for (double a : accountant.orders()) {
    if (a == order) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RdpAccountantTest, RejectsBadInputs) {
  RdpAccountant accountant;
  accountant.AddGaussianSteps(1.0);
  EXPECT_FALSE(accountant.GetEpsilon(0.0).ok());
  EXPECT_FALSE(accountant.GetEpsilon(1.0).ok());
  EXPECT_FALSE(accountant.GetDelta(0.0).ok());
  EXPECT_FALSE(ComposedEpsilonForNoiseMultiplier(0.0, 1e-5, 10).ok());
  EXPECT_FALSE(ComposedEpsilonForNoiseMultiplier(1.0, 1e-5, 0).ok());
  EXPECT_FALSE(NoiseMultiplierForTargetEpsilon(0.0, 1e-5, 10).ok());
  EXPECT_FALSE(NoiseMultiplierForTargetEpsilon(1.0, 0.0, 10).ok());
}

class NoiseCalibrationRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double, size_t>> {};

TEST_P(NoiseCalibrationRoundTrip, BisectionHitsTarget) {
  auto [target_eps, delta, steps] = GetParam();
  StatusOr<double> z = NoiseMultiplierForTargetEpsilon(target_eps, delta,
                                                       steps);
  ASSERT_TRUE(z.ok()) << z.status();
  double achieved = *ComposedEpsilonForNoiseMultiplier(*z, delta, steps);
  EXPECT_NEAR(achieved, target_eps, 1e-6 * target_eps + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, NoiseCalibrationRoundTrip,
    ::testing::Combine(::testing::Values(0.08, 0.12, 1.1, 2.2, 4.6),
                       ::testing::Values(0.001, 0.01),
                       ::testing::Values(size_t{1}, size_t{30})));

}  // namespace
}  // namespace dpaudit
