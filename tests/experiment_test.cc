#include "core/experiment.h"

#include <gtest/gtest.h>

#include "dp/privacy_params.h"
#include "tests/test_helpers.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::ExtremeBoundedNeighbor;
using testing_helpers::TinyNetwork;

DiExperimentConfig FastExperiment() {
  DiExperimentConfig config;
  config.dpsgd.epochs = 5;
  config.dpsgd.learning_rate = 0.05;
  config.dpsgd.clip_norm = 1.0;
  config.dpsgd.noise_multiplier = 1.0;
  config.repetitions = 16;
  config.seed = 99;
  return config;
}

struct Fixture {
  Fixture() : rng(1), net(TinyNetwork()) {
    net.Initialize(rng);
    d = BlobDataset(9, rng);
    d_prime = ExtremeBoundedNeighbor(d, 6.0f);
  }
  Rng rng;
  Network net;
  Dataset d;
  Dataset d_prime;
};

TEST(DiExperimentTest, ProducesOneTrialPerRepetition) {
  Fixture f;
  auto summary = RunDiExperiment(f.net, f.d, f.d_prime, FastExperiment());
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->trials.size(), 16u);
  for (const DiTrialResult& trial : summary->trials) {
    EXPECT_TRUE(trial.trained_on_d);  // fixed-bit mode
    EXPECT_EQ(trial.local_sensitivities.size(), 5u);
    EXPECT_EQ(trial.sigmas.size(), 5u);
    EXPECT_GE(trial.final_belief_d, 0.0);
    EXPECT_LE(trial.final_belief_d, 1.0);
    EXPECT_GE(trial.max_belief_d, trial.final_belief_d - 1e-12);
    EXPECT_DOUBLE_EQ(trial.test_accuracy, -1.0);  // no test set given
  }
}

TEST(DiExperimentTest, ThreadCountInvariance) {
  Fixture f;
  DiExperimentConfig config = FastExperiment();
  config.threads = 1;
  auto serial = RunDiExperiment(f.net, f.d, f.d_prime, config);
  config.threads = 8;
  auto parallel = RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->trials.size(), parallel->trials.size());
  for (size_t i = 0; i < serial->trials.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial->trials[i].final_belief_d,
                     parallel->trials[i].final_belief_d);
    EXPECT_EQ(serial->trials[i].adversary_says_d,
              parallel->trials[i].adversary_says_d);
  }
}

TEST(DiExperimentTest, GradientEngineThreadCountInvariance) {
  // The per-example gradient engine inside each trial must be bit-identical
  // for any worker count, so whole-experiment summaries (beliefs, decisions,
  // sensitivity traces) must be EXACTLY equal across config.dpsgd.threads.
  Fixture f;
  DiExperimentConfig config = FastExperiment();
  config.threads = 1;
  config.dpsgd.adaptive_clipping = true;  // exercises the norm streams too

  std::vector<DiExperimentSummary> runs;
  for (size_t engine_threads : {size_t{1}, size_t{2}, size_t{8}}) {
    config.dpsgd.threads = engine_threads;
    auto summary = RunDiExperiment(f.net, f.d, f.d_prime, config);
    ASSERT_TRUE(summary.ok()) << summary.status();
    runs.push_back(*summary);
  }

  const DiExperimentSummary& ref = runs[0];
  for (size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(ref.trials.size(), runs[r].trials.size());
    for (size_t i = 0; i < ref.trials.size(); ++i) {
      const DiTrialResult& a = ref.trials[i];
      const DiTrialResult& b = runs[r].trials[i];
      EXPECT_EQ(a.adversary_says_d, b.adversary_says_d);
      EXPECT_EQ(a.final_belief_d, b.final_belief_d);
      EXPECT_EQ(a.max_belief_d, b.max_belief_d);
      ASSERT_EQ(a.local_sensitivities.size(), b.local_sensitivities.size());
      for (size_t s = 0; s < a.local_sensitivities.size(); ++s) {
        EXPECT_EQ(a.local_sensitivities[s], b.local_sensitivities[s]);
        EXPECT_EQ(a.sigmas[s], b.sigmas[s]);
      }
    }
  }
}

TEST(DiExperimentTest, SummaryStatistics) {
  DiExperimentSummary summary;
  DiTrialResult win;
  win.trained_on_d = true;
  win.adversary_says_d = true;
  win.final_belief_d = 0.8;
  win.max_belief_d = 0.95;
  DiTrialResult loss = win;
  loss.adversary_says_d = false;
  loss.final_belief_d = 0.4;
  loss.max_belief_d = 0.6;
  summary.trials = {win, win, win, loss};
  EXPECT_DOUBLE_EQ(summary.SuccessRate(), 0.75);
  EXPECT_DOUBLE_EQ(summary.EmpiricalAdvantage(), 0.5);
  EXPECT_DOUBLE_EQ(summary.EmpiricalDelta(0.9), 0.0);
  EXPECT_DOUBLE_EQ(summary.EmpiricalDelta(0.75), 0.75);
  EXPECT_DOUBLE_EQ(summary.MaxBeliefInD(), 0.95);
  EXPECT_EQ(summary.FinalBeliefsInD().size(), 4u);
}

TEST(DiExperimentTest, SuccessCountsRespectChallengeBit) {
  DiTrialResult t;
  t.trained_on_d = false;
  t.adversary_says_d = false;
  EXPECT_TRUE(t.Success());
  t.adversary_says_d = true;
  EXPECT_FALSE(t.Success());
}

TEST(DiExperimentTest, RandomizedChallengeBitMixesTrials) {
  Fixture f;
  DiExperimentConfig config = FastExperiment();
  config.randomize_challenge_bit = true;
  config.repetitions = 32;
  auto summary = RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(summary.ok());
  size_t on_d = 0;
  for (const auto& trial : summary->trials) {
    if (trial.trained_on_d) ++on_d;
  }
  EXPECT_GT(on_d, 4u);
  EXPECT_LT(on_d, 28u);
}

TEST(DiExperimentTest, LowNoiseYieldsHighAdvantage) {
  Fixture f;
  DiExperimentConfig config = FastExperiment();
  config.dpsgd.noise_multiplier = 0.05;
  config.dpsgd.sensitivity_mode = SensitivityMode::kLocalHat;
  config.repetitions = 12;
  auto summary = RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(summary.ok());
  EXPECT_GT(summary->EmpiricalAdvantage(), 0.8);
}

TEST(DiExperimentTest, HighNoiseYieldsLowAdvantage) {
  Fixture f;
  DiExperimentConfig config = FastExperiment();
  config.dpsgd.noise_multiplier = 50.0;
  config.repetitions = 24;
  auto summary = RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(summary.ok());
  EXPECT_LT(summary->EmpiricalAdvantage(), 0.5);
}

TEST(DiExperimentTest, TestSetAccuracyEvaluated) {
  Fixture f;
  Rng data_rng(44);
  Dataset test = BlobDataset(12, data_rng);
  auto summary =
      RunDiExperiment(f.net, f.d, f.d_prime, FastExperiment(), &test);
  ASSERT_TRUE(summary.ok());
  std::vector<double> accuracies = summary->TestAccuracies();
  ASSERT_EQ(accuracies.size(), 16u);
  for (double acc : accuracies) {
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
  }
}

TEST(DiExperimentTest, EmpiricalDeltaZeroWithoutTrainedOnDTrials) {
  DiExperimentSummary summary;
  DiTrialResult t;
  t.trained_on_d = false;
  t.final_belief_d = 0.99;
  summary.trials = {t};
  EXPECT_DOUBLE_EQ(summary.EmpiricalDelta(0.9), 0.0);
  EXPECT_TRUE(summary.FinalBeliefsInD().empty());
  EXPECT_DOUBLE_EQ(summary.MaxBeliefInD(), 0.0);
}

TEST(DiExperimentTest, EmptySummaryStatisticsAreSafe) {
  DiExperimentSummary summary;
  EXPECT_DOUBLE_EQ(summary.SuccessRate(), 0.0);
  EXPECT_DOUBLE_EQ(summary.EmpiricalAdvantage(), -1.0);
  EXPECT_DOUBLE_EQ(summary.EmpiricalDelta(0.9), 0.0);
  EXPECT_TRUE(summary.TestAccuracies().empty());
}

TEST(DiExperimentTest, FixedWeightsModeSharesInitialization) {
  Fixture f;
  DiExperimentConfig config = FastExperiment();
  config.reinitialize_weights = false;
  config.repetitions = 4;
  auto summary = RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->trials.size(), 4u);
  // With shared theta_0 the per-step sigmas at step 0 are identical across
  // trials in GS mode (sensitivity is the constant global bound).
  double sigma0 = summary->trials[0].sigmas[0];
  for (const auto& trial : summary->trials) {
    EXPECT_DOUBLE_EQ(trial.sigmas[0], sigma0);
  }
}

TEST(DiExperimentTest, RejectsInvalidConfig) {
  Fixture f;
  DiExperimentConfig config = FastExperiment();
  config.repetitions = 0;
  EXPECT_FALSE(RunDiExperiment(f.net, f.d, f.d_prime, config).ok());
  config = FastExperiment();
  config.dpsgd.epochs = 0;
  EXPECT_FALSE(RunDiExperiment(f.net, f.d, f.d_prime, config).ok());
}

}  // namespace
}  // namespace dpaudit
