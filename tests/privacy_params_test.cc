#include "dp/privacy_params.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dpaudit {
namespace {

TEST(PrivacyParamsTest, ValidParams) {
  EXPECT_TRUE((PrivacyParams{2.2, 0.001}.Validate().ok()));
  EXPECT_TRUE((PrivacyParams{0.01, 0.0}.Validate().ok()));  // pure DP
}

TEST(PrivacyParamsTest, InvalidEpsilon) {
  EXPECT_FALSE((PrivacyParams{0.0, 0.001}.Validate().ok()));
  EXPECT_FALSE((PrivacyParams{-1.0, 0.001}.Validate().ok()));
  EXPECT_FALSE((PrivacyParams{std::nan(""), 0.001}.Validate().ok()));
  EXPECT_FALSE((PrivacyParams{INFINITY, 0.001}.Validate().ok()));
}

TEST(PrivacyParamsTest, InvalidDelta) {
  EXPECT_FALSE((PrivacyParams{1.0, -0.1}.Validate().ok()));
  EXPECT_FALSE((PrivacyParams{1.0, 1.0}.Validate().ok()));
  EXPECT_FALSE((PrivacyParams{1.0, 1.5}.Validate().ok()));
}

TEST(PrivacyParamsTest, ToStringMentionsBothParameters) {
  std::string s = PrivacyParams{2.2, 0.001}.ToString();
  EXPECT_NE(s.find("2.2"), std::string::npos);
  EXPECT_NE(s.find("0.001"), std::string::npos);
}

TEST(NeighborModeTest, Strings) {
  EXPECT_STREQ(NeighborModeToString(NeighborMode::kUnbounded), "unbounded");
  EXPECT_STREQ(NeighborModeToString(NeighborMode::kBounded), "bounded");
  EXPECT_STREQ(SensitivityModeToString(SensitivityMode::kGlobal), "GS");
  EXPECT_STREQ(SensitivityModeToString(SensitivityMode::kLocalHat), "LS");
}

TEST(GlobalClipSensitivityTest, UnboundedIsC) {
  EXPECT_DOUBLE_EQ(GlobalClipSensitivity(NeighborMode::kUnbounded, 3.0), 3.0);
}

TEST(GlobalClipSensitivityTest, BoundedIsTwoC) {
  // Replacing a record can flip a clipped gradient to its negation: 2C.
  EXPECT_DOUBLE_EQ(GlobalClipSensitivity(NeighborMode::kBounded, 3.0), 6.0);
}

TEST(GlobalClipSensitivityDeathTest, NonPositiveClipDies) {
  EXPECT_DEATH(GlobalClipSensitivity(NeighborMode::kBounded, 0.0),
               "CHECK failed");
}

}  // namespace
}  // namespace dpaudit
