#include "nn/gradient_engine.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "data/dataset.h"
#include "nn/network.h"
#include "tests/test_helpers.h"
#include "util/random.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::TinyNetwork;

// The engine's determinism contract is exact: for any thread count its sums
// must be bit-identical to the sequential reference in Network, so every
// comparison below is EXPECT_EQ on floats, not a tolerance check.

Dataset MnistBlobs(size_t count, Rng& rng) {
  Dataset d;
  for (size_t i = 0; i < count; ++i) {
    Tensor x({1, 12, 12});
    for (size_t j = 0; j < x.size(); ++j) {
      x[j] = static_cast<float>(rng.Gaussian(0.0, 1.0));
    }
    d.Add(std::move(x), i % 10);
  }
  return d;
}

class GradientEngineTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GradientEngineTest, ClippedGradientSumMatchesNetworkBitwise) {
  const size_t threads = GetParam();
  Rng rng(7);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(23, rng);  // not a multiple of the chunk size

  std::vector<double> ref_norms;
  std::vector<float> ref =
      net.ClippedGradientSum(d.inputs, d.labels, 1.0, &ref_norms);

  GradientEngine::Options options;
  options.threads = threads;
  options.chunk = 4;  // force several waves in parallel mode
  GradientEngine engine(net, options);
  engine.SyncParams(net);
  std::vector<double> norms;
  std::vector<float> sum =
      engine.ClippedGradientSum(d.inputs, d.labels, 1.0, &norms);

  ASSERT_EQ(ref.size(), sum.size());
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(ref[i], sum[i]) << i;
  ASSERT_EQ(ref_norms.size(), norms.size());
  for (size_t i = 0; i < norms.size(); ++i) {
    EXPECT_EQ(ref_norms[i], norms[i]) << i;
  }
}

TEST_P(GradientEngineTest, PerLayerClippedGradientSumMatchesNetworkBitwise) {
  const size_t threads = GetParam();
  Rng rng(11);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(17, rng);

  std::vector<float> ref =
      net.PerLayerClippedGradientSum(d.inputs, d.labels, 1.0);

  GradientEngine::Options options;
  options.threads = threads;
  options.chunk = 4;
  GradientEngine engine(net, options);
  engine.SyncParams(net);
  std::vector<float> sum =
      engine.PerLayerClippedGradientSum(d.inputs, d.labels, 1.0);

  ASSERT_EQ(ref.size(), sum.size());
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(ref[i], sum[i]) << i;
}

TEST_P(GradientEngineTest, ConvolutionalNetworkMatchesNetworkBitwise) {
  const size_t threads = GetParam();
  Rng rng(13);
  Network net = BuildMnistNetwork(12);
  net.Initialize(rng);
  Dataset d = MnistBlobs(9, rng);

  std::vector<double> ref_norms;
  std::vector<float> ref =
      net.ClippedGradientSum(d.inputs, d.labels, 2.0, &ref_norms);

  GradientEngine::Options options;
  options.threads = threads;
  options.chunk = 2;
  GradientEngine engine(net, options);
  engine.SyncParams(net);
  std::vector<double> norms;
  std::vector<float> sum =
      engine.ClippedGradientSum(d.inputs, d.labels, 2.0, &norms);

  ASSERT_EQ(ref.size(), sum.size());
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(ref[i], sum[i]) << i;
  ASSERT_EQ(ref_norms.size(), norms.size());
  for (size_t i = 0; i < norms.size(); ++i) {
    EXPECT_EQ(ref_norms[i], norms[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, GradientEngineTest,
                         ::testing::Values(1u, 2u, 8u));

// Batched lane path: for every lane count B (including B > chunk and B that
// leaves a ragged final pack) and every thread count, the lane engine must be
// bit-identical to both the scalar-path engine (batch_lanes = 0) and the
// sequential Network reference — gradients AND norms.
class BatchLanesTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(BatchLanesTest, DenseNetworkBitIdenticalToScalarPath) {
  const size_t lanes = std::get<0>(GetParam());
  const size_t threads = std::get<1>(GetParam());
  Rng rng(23);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(23, rng);  // 23 % B != 0 for B in {3, 8, 13}

  std::vector<double> ref_norms;
  std::vector<float> ref =
      net.ClippedGradientSum(d.inputs, d.labels, 1.0, &ref_norms);

  GradientEngine::Options options;
  options.threads = threads;
  options.chunk = 4;
  options.batch_lanes = lanes;
  GradientEngine engine(net, options);
  EXPECT_EQ(lanes <= 1 ? 0u : lanes, engine.batch_lanes());
  engine.SyncParams(net);
  std::vector<double> norms;
  std::vector<float> sum =
      engine.ClippedGradientSum(d.inputs, d.labels, 1.0, &norms);

  ASSERT_EQ(ref.size(), sum.size());
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(ref[i], sum[i]) << i;
  ASSERT_EQ(ref_norms.size(), norms.size());
  for (size_t i = 0; i < norms.size(); ++i) {
    EXPECT_EQ(ref_norms[i], norms[i]) << i;
  }
}

TEST_P(BatchLanesTest, ConvolutionalNetworkBitIdenticalToScalarPath) {
  const size_t lanes = std::get<0>(GetParam());
  const size_t threads = std::get<1>(GetParam());
  Rng rng(29);
  Network net = BuildMnistNetwork(12);
  net.Initialize(rng);
  Dataset d = MnistBlobs(11, rng);  // ragged final pack for B in {3, 8, 13}

  std::vector<double> ref_norms;
  std::vector<float> ref =
      net.ClippedGradientSum(d.inputs, d.labels, 2.0, &ref_norms);

  GradientEngine::Options options;
  options.threads = threads;
  options.chunk = 2;  // < B for most cases: chunk must round up to a pack
  options.batch_lanes = lanes;
  GradientEngine engine(net, options);
  engine.SyncParams(net);
  std::vector<double> norms;
  std::vector<float> sum =
      engine.ClippedGradientSum(d.inputs, d.labels, 2.0, &norms);

  ASSERT_EQ(ref.size(), sum.size());
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(ref[i], sum[i]) << i;
  ASSERT_EQ(ref_norms.size(), norms.size());
  for (size_t i = 0; i < norms.size(); ++i) {
    EXPECT_EQ(ref_norms[i], norms[i]) << i;
  }
}

TEST_P(BatchLanesTest, PerLayerClippingBitIdenticalToScalarPath) {
  const size_t lanes = std::get<0>(GetParam());
  const size_t threads = std::get<1>(GetParam());
  Rng rng(31);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(17, rng);

  std::vector<float> ref =
      net.PerLayerClippedGradientSum(d.inputs, d.labels, 1.0);

  GradientEngine::Options options;
  options.threads = threads;
  options.chunk = 4;
  options.batch_lanes = lanes;
  GradientEngine engine(net, options);
  engine.SyncParams(net);
  std::vector<float> sum =
      engine.PerLayerClippedGradientSum(d.inputs, d.labels, 1.0);

  ASSERT_EQ(ref.size(), sum.size());
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(ref[i], sum[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(
    LanesByThreads, BatchLanesTest,
    ::testing::Combine(::testing::Values(1u, 3u, 8u, 13u),
                       ::testing::Values(1u, 4u, 13u)));

// A ragged tail pack takes one of two routes: counts <= B/2 run the scalar
// path, larger counts are padded to the full lane width (padded lanes are
// discarded). Pin both sides of the boundary at B = 8 — tails of 4 (last
// scalar-route count) and 5 (first padded count), plus datasets small
// enough that the tail is the only pack — on the conv net, where the
// padded route engages the width-pinned fast kernels.
TEST(BatchLanesRaggedTest, TailRouteBoundaryBitIdenticalToScalarPath) {
  for (size_t n : {4u, 5u, 12u, 13u}) {
    Rng rng(37);
    Network net = BuildMnistNetwork(12);
    net.Initialize(rng);
    Dataset d = MnistBlobs(n, rng);

    std::vector<double> ref_norms;
    std::vector<float> ref =
        net.ClippedGradientSum(d.inputs, d.labels, 2.0, &ref_norms);

    GradientEngine::Options options;
    options.threads = 1;
    options.batch_lanes = 8;
    GradientEngine engine(net, options);
    engine.SyncParams(net);
    std::vector<double> norms;
    std::vector<float> sum =
        engine.ClippedGradientSum(d.inputs, d.labels, 2.0, &norms);

    ASSERT_EQ(ref.size(), sum.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i], sum[i]) << "n=" << n << " i=" << i;
    }
    ASSERT_EQ(ref_norms.size(), norms.size());
    for (size_t i = 0; i < norms.size(); ++i) {
      EXPECT_EQ(ref_norms[i], norms[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(GradientEngineApiTest, SyncParamsTracksUpdatedWeights) {
  Rng rng(17);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(6, rng);

  GradientEngine::Options options;
  options.threads = 2;
  GradientEngine engine(net, options);
  engine.SyncParams(net);
  std::vector<float> before =
      engine.ClippedGradientSum(d.inputs, d.labels, 1.0);

  // Move the weights; without a fresh SyncParams the engine must keep
  // evaluating at the old parameters, after it must match the new ones.
  net.ApplyGradientStep(before, 0.1 / static_cast<double>(d.size()));
  std::vector<float> stale = engine.ClippedGradientSum(d.inputs, d.labels, 1.0);
  ASSERT_EQ(before.size(), stale.size());
  for (size_t i = 0; i < stale.size(); ++i) EXPECT_EQ(before[i], stale[i]);

  engine.SyncParams(net);
  std::vector<float> ref = net.ClippedGradientSum(d.inputs, d.labels, 1.0);
  std::vector<float> fresh = engine.ClippedGradientSum(d.inputs, d.labels, 1.0);
  ASSERT_EQ(ref.size(), fresh.size());
  for (size_t i = 0; i < fresh.size(); ++i) EXPECT_EQ(ref[i], fresh[i]);
}

TEST(GradientEngineApiTest, VisitorSeesAscendingIndicesAndLayerNorms) {
  Rng rng(19);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(10, rng);

  GradientEngine::Options options;
  options.threads = 3;
  options.chunk = 2;
  GradientEngine engine(net, options);
  engine.SyncParams(net);

  const size_t num_layers = net.LayerParamRanges().size();
  size_t expected = 0;
  engine.VisitPerExampleGradients(
      d.inputs, d.labels, GradientEngine::NormMode::kPerLayer,
      [&](size_t j, const GradientEngine::PerExampleGradView& view) {
        EXPECT_EQ(expected, j);
        ++expected;
        ASSERT_NE(nullptr, view.layer_norms);
        for (size_t l = 0; l < num_layers; ++l) {
          EXPECT_GE(view.layer_norms[l], 0.0);
        }
      });
  EXPECT_EQ(d.size(), expected);
}

}  // namespace
}  // namespace dpaudit
