#include "core/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/auditor.h"
#include "dp/privacy_params.h"
#include "io/serialization.h"
#include "nn/optimizer.h"
#include "tests/test_helpers.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::ExtremeBoundedNeighbor;
using testing_helpers::TinyNetwork;

DiExperimentConfig FastExperiment() {
  DiExperimentConfig config;
  config.dpsgd.epochs = 5;
  config.dpsgd.learning_rate = 0.05;
  config.dpsgd.clip_norm = 1.0;
  config.dpsgd.noise_multiplier = 1.0;
  config.repetitions = 16;
  config.seed = 99;
  return config;
}

struct Fixture {
  Fixture() : rng(1), net(TinyNetwork()) {
    net.Initialize(rng);
    d = BlobDataset(9, rng);
    d_prime = ExtremeBoundedNeighbor(d, 6.0f);
  }
  Rng rng;
  Network net;
  Dataset d;
  Dataset d_prime;
};

/// Fresh per-test cache directory under gtest's temp dir.
class ScopedCacheDir {
 public:
  explicit ScopedCacheDir(const std::string& name)
      : path_(::testing::TempDir() + "/dpaudit_trace_" + name) {
    std::filesystem::remove_all(path_);
  }
  ~ScopedCacheDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

ExperimentTrace SampleTrace() {
  ExperimentTrace trace;
  trace.fingerprint = {0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  for (int t = 0; t < 3; ++t) {
    TrialTrace trial;
    trial.trained_on_d = t != 1;
    trial.adversary_says_d = t == 0;
    trial.final_belief_d = 0.25 * (t + 1);
    trial.max_belief_d = 0.3 * (t + 1);
    trial.test_accuracy = t == 2 ? 0.875 : -1.0;
    trial.belief_history = {0.5, 0.6 + 0.01 * t, 0.7 + 0.01 * t};
    for (int s = 0; s < 2; ++s) {
      StepTraceRecord step;
      step.clip_norm = 1.0 + s;
      step.local_sensitivity = 0.125 * (s + 1);
      step.sensitivity_used = 0.25 * (s + 1);
      step.sigma = 1.5 * (s + 1);
      step.log_density_d = -1.0 - 0.1 * s;
      step.log_density_dprime = -2.0 - 0.1 * s;
      step.belief_d = trial.belief_history[s + 1];
      trial.steps.push_back(step);
    }
    trace.trials.push_back(trial);
  }
  return trace;
}

void ExpectTracesEqual(const ExperimentTrace& a, const ExperimentTrace& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (size_t t = 0; t < a.trials.size(); ++t) {
    const TrialTrace& ta = a.trials[t];
    const TrialTrace& tb = b.trials[t];
    EXPECT_EQ(ta.trained_on_d, tb.trained_on_d);
    EXPECT_EQ(ta.adversary_says_d, tb.adversary_says_d);
    EXPECT_EQ(ta.final_belief_d, tb.final_belief_d);
    EXPECT_EQ(ta.max_belief_d, tb.max_belief_d);
    EXPECT_EQ(ta.test_accuracy, tb.test_accuracy);
    EXPECT_EQ(ta.belief_history, tb.belief_history);
    ASSERT_EQ(ta.steps.size(), tb.steps.size());
    for (size_t s = 0; s < ta.steps.size(); ++s) {
      EXPECT_EQ(ta.steps[s].clip_norm, tb.steps[s].clip_norm);
      EXPECT_EQ(ta.steps[s].local_sensitivity,
                tb.steps[s].local_sensitivity);
      EXPECT_EQ(ta.steps[s].sensitivity_used, tb.steps[s].sensitivity_used);
      EXPECT_EQ(ta.steps[s].sigma, tb.steps[s].sigma);
      EXPECT_EQ(ta.steps[s].log_density_d, tb.steps[s].log_density_d);
      EXPECT_EQ(ta.steps[s].log_density_dprime,
                tb.steps[s].log_density_dprime);
      EXPECT_EQ(ta.steps[s].belief_d, tb.steps[s].belief_d);
    }
  }
}

TEST(TraceFingerprintTest, HexRoundTrip) {
  TraceFingerprint key{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(key.ToHex(), "0123456789abcdeffedcba9876543210");
  auto parsed = TraceFingerprint::FromHex(key.ToHex());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, key);
}

TEST(TraceFingerprintTest, RejectsMalformedHex) {
  EXPECT_FALSE(TraceFingerprint::FromHex("abc").ok());
  EXPECT_FALSE(
      TraceFingerprint::FromHex("0123456789abcdeffedcba987654321g").ok());
}

TEST(TraceSerializationTest, RoundTripIsExact) {
  ExperimentTrace trace = SampleTrace();
  auto bytes = SerializeTrace(trace);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto restored = DeserializeTrace(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectTracesEqual(trace, *restored);
}

TEST(TraceSerializationTest, DetectsCorruption) {
  ExperimentTrace trace = SampleTrace();
  auto bytes = SerializeTrace(trace);
  ASSERT_TRUE(bytes.ok());
  // Flip one payload byte: the frame checksum must catch it.
  std::vector<uint8_t> corrupted = *bytes;
  corrupted[corrupted.size() / 2] ^= 0x40;
  EXPECT_FALSE(DeserializeTrace(corrupted).ok());
  // Truncation must fail too, not crash.
  std::vector<uint8_t> truncated(*bytes);
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(DeserializeTrace(truncated).ok());
  // Wrong blob kind (a dataset is not a trace).
  EXPECT_FALSE(
      DeserializeTrace(FrameBlob(kBlobKindDataset, {1, 2, 3})).ok());
}

TEST(TraceSerializationTest, SummaryReconstruction) {
  ExperimentTrace trace = SampleTrace();
  DiExperimentSummary summary = trace.ToSummary();
  ASSERT_EQ(summary.trials.size(), trace.trials.size());
  for (size_t t = 0; t < trace.trials.size(); ++t) {
    EXPECT_EQ(summary.trials[t].trained_on_d, trace.trials[t].trained_on_d);
    EXPECT_EQ(summary.trials[t].final_belief_d,
              trace.trials[t].final_belief_d);
    ASSERT_EQ(summary.trials[t].local_sensitivities.size(),
              trace.trials[t].steps.size());
    for (size_t s = 0; s < trace.trials[t].steps.size(); ++s) {
      EXPECT_EQ(summary.trials[t].local_sensitivities[s],
                trace.trials[t].steps[s].local_sensitivity);
      EXPECT_EQ(summary.trials[t].sigmas[s], trace.trials[t].steps[s].sigma);
    }
  }
}

TEST(TraceFingerprintTest, EachConfigFieldInvalidatesTheKey) {
  Fixture f;
  DiExperimentConfig base = FastExperiment();
  TraceFingerprint key = FingerprintExperiment(f.net, f.d, f.d_prime, base);

  // The same inputs rehash to the same key.
  EXPECT_EQ(FingerprintExperiment(f.net, f.d, f.d_prime, base), key);

  // Thread counts are excluded by design (results are thread-invariant).
  DiExperimentConfig threads = base;
  threads.threads = 7;
  threads.dpsgd.threads = 3;
  EXPECT_EQ(FingerprintExperiment(f.net, f.d, f.d_prime, threads), key);

  // The repetition count is excluded by design too: trial r depends only on
  // (seed, r), so a shorter recording is a bit-identical prefix of a longer
  // run and must share its key (prefix-extensible traces).
  DiExperimentConfig reps = base;
  reps.repetitions = 17;
  EXPECT_EQ(FingerprintExperiment(f.net, f.d, f.d_prime, reps), key);

  // Every semantic field must change the key.
  std::vector<DiExperimentConfig> variants;
  {
    DiExperimentConfig c = base;
    c.dpsgd.epochs = 6;
    variants.push_back(c);
  }
  {
    DiExperimentConfig c = base;
    c.dpsgd.learning_rate = 0.06;
    variants.push_back(c);
  }
  {
    DiExperimentConfig c = base;
    c.dpsgd.clip_norm = 2.0;
    variants.push_back(c);
  }
  {
    DiExperimentConfig c = base;
    c.dpsgd.noise_multiplier = 1.5;
    variants.push_back(c);
  }
  {
    DiExperimentConfig c = base;
    c.dpsgd.sensitivity_mode = SensitivityMode::kLocalHat;
    variants.push_back(c);
  }
  {
    DiExperimentConfig c = base;
    c.dpsgd.neighbor_mode = NeighborMode::kUnbounded;
    variants.push_back(c);
  }
  {
    DiExperimentConfig c = base;
    c.dpsgd.optimizer = OptimizerKind::kMomentum;
    variants.push_back(c);
  }
  {
    DiExperimentConfig c = base;
    c.dpsgd.adaptive_clipping = true;
    variants.push_back(c);
  }
  {
    DiExperimentConfig c = base;
    c.dpsgd.clip_quantile = 0.6;
    variants.push_back(c);
  }
  {
    DiExperimentConfig c = base;
    c.dpsgd.clip_smoothing = 0.4;
    variants.push_back(c);
  }
  {
    DiExperimentConfig c = base;
    c.dpsgd.per_layer_clipping = true;
    variants.push_back(c);
  }
  {
    DiExperimentConfig c = base;
    c.seed = 100;
    variants.push_back(c);
  }
  {
    DiExperimentConfig c = base;
    c.randomize_challenge_bit = true;
    variants.push_back(c);
  }
  {
    DiExperimentConfig c = base;
    c.reinitialize_weights = false;
    variants.push_back(c);
  }
  for (size_t i = 0; i < variants.size(); ++i) {
    EXPECT_NE(FingerprintExperiment(f.net, f.d, f.d_prime, variants[i]), key)
        << "variant " << i << " did not change the fingerprint";
  }
}

TEST(TraceFingerprintTest, DataAndModelInvalidateTheKey) {
  Fixture f;
  DiExperimentConfig config = FastExperiment();
  TraceFingerprint key = FingerprintExperiment(f.net, f.d, f.d_prime, config);

  // Different dataset contents.
  Rng other_rng(55);
  Dataset other = BlobDataset(9, other_rng);
  EXPECT_NE(FingerprintExperiment(f.net, other, f.d_prime, config), key);
  EXPECT_NE(FingerprintExperiment(f.net, f.d, other, config), key);
  EXPECT_NE(DatasetDigest(other), DatasetDigest(f.d));

  // Swapping D and D' must not collide.
  EXPECT_NE(FingerprintExperiment(f.net, f.d_prime, f.d, config), key);

  // Different initial weights (theta_0 matters when weights are shared).
  Network reseeded = TinyNetwork();
  Rng weight_rng(77);
  reseeded.Initialize(weight_rng);
  EXPECT_NE(FingerprintExperiment(reseeded, f.d, f.d_prime, config), key);

  // Presence of a test set changes the trace contents, hence the key.
  Rng test_rng(56);
  Dataset test = BlobDataset(4, test_rng);
  EXPECT_NE(FingerprintExperiment(f.net, f.d, f.d_prime, config, &test),
            key);
}

TEST(TraceStoreTest, SaveLoadListEvict) {
  ScopedCacheDir cache("store");
  TraceStore store(cache.path());
  ExperimentTrace trace = SampleTrace();

  // Empty cache: NotFound, empty listing.
  EXPECT_EQ(store.Load(trace.fingerprint).status().code(),
            StatusCode::kNotFound);
  auto empty = store.List();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  ASSERT_TRUE(store.Save(trace).ok());
  auto loaded = store.Load(trace.fingerprint);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectTracesEqual(trace, *loaded);

  auto entries = store.List();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].key, trace.fingerprint.ToHex());
  EXPECT_EQ((*entries)[0].repetitions, 3u);
  EXPECT_EQ((*entries)[0].steps, 2u);

  ASSERT_TRUE(store.Evict(trace.fingerprint.ToHex()).ok());
  EXPECT_EQ(store.Load(trace.fingerprint).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store.Evict(trace.fingerprint.ToHex()).code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(store.Save(trace).ok());
  ExperimentTrace second = trace;
  second.fingerprint.lo ^= 1;
  ASSERT_TRUE(store.Save(second).ok());
  auto removed = store.EvictAll();
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 2u);
}

TEST(TraceStoreTest, CorruptEntryFailsValidationButListSkipsIt) {
  ScopedCacheDir cache("corrupt");
  TraceStore store(cache.path());
  ExperimentTrace trace = SampleTrace();
  ASSERT_TRUE(store.Save(trace).ok());

  // Flip one byte in the middle of the stored file.
  std::string path = store.PathFor(trace.fingerprint);
  auto bytes = ReadBlobFile(path);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteBlobFile(path, *bytes).ok());

  Status status = store.Load(trace.fingerprint).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  auto entries = store.List();
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
}

TEST(TraceCacheTest, WarmReplayIsBitIdenticalToColdRun) {
  Fixture f;
  ScopedCacheDir cache("replay");
  TraceStore store(cache.path());
  DiExperimentConfig config = FastExperiment();

  // Reference: no cache involved at all.
  auto reference = RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // Cold: records into the cache while producing the same result.
  config.trace_store = &store;
  auto cold = RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(cold.ok()) << cold.status();
  auto entries = store.List();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);

  // Warm: replays from disk without training.
  auto warm = RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(warm.ok()) << warm.status();

  for (const DiExperimentSummary* summary :
       {&*cold, &*warm}) {
    ASSERT_EQ(summary->trials.size(), reference->trials.size());
    for (size_t i = 0; i < reference->trials.size(); ++i) {
      const DiTrialResult& a = reference->trials[i];
      const DiTrialResult& b = summary->trials[i];
      EXPECT_EQ(a.trained_on_d, b.trained_on_d);
      EXPECT_EQ(a.adversary_says_d, b.adversary_says_d);
      EXPECT_EQ(a.final_belief_d, b.final_belief_d);
      EXPECT_EQ(a.max_belief_d, b.max_belief_d);
      EXPECT_EQ(a.test_accuracy, b.test_accuracy);
      ASSERT_EQ(a.local_sensitivities.size(), b.local_sensitivities.size());
      for (size_t s = 0; s < a.local_sensitivities.size(); ++s) {
        EXPECT_EQ(a.local_sensitivities[s], b.local_sensitivities[s]);
        EXPECT_EQ(a.sigmas[s], b.sigmas[s]);
      }
    }
  }

  // All three epsilon' estimators must agree bit-for-bit.
  double delta = 1.0 / 9.0;
  auto audit_ref = AuditExperiment(*reference, delta);
  auto audit_warm = AuditExperiment(*warm, delta);
  ASSERT_TRUE(audit_ref.ok());
  ASSERT_TRUE(audit_warm.ok());
  EXPECT_EQ(audit_ref->epsilon_from_sensitivities,
            audit_warm->epsilon_from_sensitivities);
  EXPECT_EQ(audit_ref->epsilon_from_belief, audit_warm->epsilon_from_belief);
  EXPECT_EQ(audit_ref->epsilon_from_advantage,
            audit_warm->epsilon_from_advantage);
}

TEST(TraceCacheTest, TestSetAccuracySurvivesReplay) {
  Fixture f;
  ScopedCacheDir cache("testset");
  TraceStore store(cache.path());
  Rng data_rng(44);
  Dataset test = BlobDataset(12, data_rng);
  DiExperimentConfig config = FastExperiment();
  config.repetitions = 4;
  config.trace_store = &store;

  auto cold = RunDiExperiment(f.net, f.d, f.d_prime, config, &test);
  ASSERT_TRUE(cold.ok());
  auto warm = RunDiExperiment(f.net, f.d, f.d_prime, config, &test);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(cold->TestAccuracies().size(), 4u);
  EXPECT_EQ(cold->TestAccuracies(), warm->TestAccuracies());

  // A run WITHOUT the test set keys differently — no false replay of the
  // accuracy-free variant.
  auto no_test = RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(no_test.ok());
  EXPECT_TRUE(no_test->TestAccuracies().empty());
  auto entries = store.List();
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
}

void ExpectTrialPrefixBitIdentical(const DiExperimentSummary& reference,
                                   const DiExperimentSummary& got,
                                   size_t count) {
  ASSERT_LE(count, reference.trials.size());
  ASSERT_EQ(got.trials.size(), count);
  for (size_t i = 0; i < count; ++i) {
    const DiTrialResult& a = reference.trials[i];
    const DiTrialResult& b = got.trials[i];
    EXPECT_EQ(a.trained_on_d, b.trained_on_d);
    EXPECT_EQ(a.adversary_says_d, b.adversary_says_d);
    EXPECT_EQ(a.final_belief_d, b.final_belief_d);
    EXPECT_EQ(a.max_belief_d, b.max_belief_d);
    EXPECT_EQ(a.test_accuracy, b.test_accuracy);
    ASSERT_EQ(a.local_sensitivities.size(), b.local_sensitivities.size());
    for (size_t s = 0; s < a.local_sensitivities.size(); ++s) {
      EXPECT_EQ(a.local_sensitivities[s], b.local_sensitivities[s]);
      EXPECT_EQ(a.sigmas[s], b.sigmas[s]);
    }
  }
}

TEST(TraceCacheTest, ShorterRecordingReplaysAsPrefixAndExtends) {
  Fixture f;
  ScopedCacheDir cache("prefix");
  TraceStore store(cache.path());

  // Reference: 8 repetitions, no cache involved.
  DiExperimentConfig config = FastExperiment();
  config.repetitions = 8;
  auto reference = RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // Record only 4 repetitions. Trial r depends on (seed, r) alone, so these
  // are bit-identical to the reference's first four.
  config.repetitions = 4;
  config.trace_store = &store;
  auto small = RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(small.ok()) << small.status();
  ExpectTrialPrefixBitIdentical(*reference, *small, 4);
  auto entries = store.List();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ(entries->front().repetitions, 4u);

  // Asking for 8 replays the cached prefix, trains only the tail, and saves
  // the extended recording under the SAME key (repetitions are not part of
  // the fingerprint).
  config.repetitions = 8;
  auto extended = RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(extended.ok()) << extended.status();
  ExpectTrialPrefixBitIdentical(*reference, *extended, 8);
  entries = store.List();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ(entries->front().repetitions, 8u);

  // A longer recording serves shorter requests as a pure replay (no train,
  // no rewrite).
  config.repetitions = 3;
  auto prefix = RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(prefix.ok()) << prefix.status();
  ExpectTrialPrefixBitIdentical(*reference, *prefix, 3);
  entries = store.List();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ(entries->front().repetitions, 8u);
}

TEST(TraceCacheTest, CorruptCacheEntryFallsBackToLiveRun) {
  Fixture f;
  ScopedCacheDir cache("fallback");
  TraceStore store(cache.path());
  DiExperimentConfig config = FastExperiment();
  config.repetitions = 4;
  config.trace_store = &store;

  auto cold = RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(cold.ok());

  TraceFingerprint key =
      FingerprintExperiment(f.net, f.d, f.d_prime, config);
  std::string path = store.PathFor(key);
  auto bytes = ReadBlobFile(path);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() - 1] ^= 0xff;  // break the checksum
  ASSERT_TRUE(WriteBlobFile(path, *bytes).ok());

  auto rerun = RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(rerun.ok()) << rerun.status();
  ASSERT_EQ(rerun->trials.size(), cold->trials.size());
  for (size_t i = 0; i < cold->trials.size(); ++i) {
    EXPECT_EQ(cold->trials[i].final_belief_d,
              rerun->trials[i].final_belief_d);
  }
  // The rerun repaired the cache entry.
  auto repaired = store.Load(key);
  EXPECT_TRUE(repaired.ok()) << repaired.status();
}

}  // namespace
}  // namespace dpaudit
