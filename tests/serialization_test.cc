#include "io/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "tensor/tensor.h"
#include "tests/test_helpers.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::TinyNetwork;

TEST(Fnv1aTest, KnownValues) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
  const uint8_t a[] = {'a'};
  EXPECT_EQ(Fnv1a64(a, 1), 0xaf63dc4c8601ec8cULL);
}

TEST(WeightsSerializationTest, RoundTrip) {
  Rng rng(1);
  Network net = TinyNetwork();
  net.Initialize(rng);
  auto bytes = SerializeWeights(net);
  ASSERT_TRUE(bytes.ok());
  Network restored = TinyNetwork();  // different (zero) weights
  Rng rng2(99);
  restored.Initialize(rng2);
  ASSERT_NE(restored.FlatParams(), net.FlatParams());
  ASSERT_TRUE(DeserializeWeights(*bytes, restored).ok());
  EXPECT_EQ(restored.FlatParams(), net.FlatParams());
}

TEST(WeightsSerializationTest, RejectsWrongArchitecture) {
  Rng rng(2);
  Network net = TinyNetwork();
  net.Initialize(rng);
  auto bytes = SerializeWeights(net);
  ASSERT_TRUE(bytes.ok());
  Network different = BuildPurchaseNetwork(10, 4, 3);
  Status status = DeserializeWeights(*bytes, different);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(WeightsSerializationTest, DetectsCorruption) {
  Rng rng(3);
  Network net = TinyNetwork();
  net.Initialize(rng);
  auto bytes = SerializeWeights(net);
  ASSERT_TRUE(bytes.ok());
  std::vector<uint8_t> corrupted = *bytes;
  corrupted[corrupted.size() / 2] ^= 0xFF;  // flip payload bits
  Network target = TinyNetwork();
  Status status = DeserializeWeights(corrupted, target);
  EXPECT_FALSE(status.ok());
}

TEST(WeightsSerializationTest, RejectsWrongKindAndGarbage) {
  Rng rng(4);
  Dataset d = BlobDataset(3, rng);
  auto dataset_bytes = SerializeDataset(d);
  ASSERT_TRUE(dataset_bytes.ok());
  Network net = TinyNetwork();
  // A dataset blob is not a weights blob.
  EXPECT_FALSE(DeserializeWeights(*dataset_bytes, net).ok());
  EXPECT_FALSE(DeserializeWeights({1, 2, 3}, net).ok());
  std::vector<uint8_t> bad_magic(40, 0);
  EXPECT_FALSE(DeserializeWeights(bad_magic, net).ok());
}

TEST(WeightsSerializationTest, ConvNetworkRoundTrip) {
  // The MNIST conv/norm/pool stack exercises multi-tensor layers.
  Rng rng(9);
  Network net = BuildMnistNetwork(14, 2, 4);
  net.Initialize(rng);
  auto bytes = SerializeWeights(net);
  ASSERT_TRUE(bytes.ok());
  Network restored = BuildMnistNetwork(14, 2, 4);
  ASSERT_TRUE(DeserializeWeights(*bytes, restored).ok());
  EXPECT_EQ(restored.FlatParams(), net.FlatParams());
  // Restored model computes identical predictions.
  Tensor x({1, 14, 14});
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(i % 7) / 7.0f;
  }
  EXPECT_EQ(net.Predict(x), restored.Predict(x));
}

TEST(DatasetSerializationTest, RoundTrip) {
  Rng rng(5);
  Dataset d = BlobDataset(7, rng);
  auto bytes = SerializeDataset(d);
  ASSERT_TRUE(bytes.ok());
  auto restored = DeserializeDataset(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), d.size());
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(restored->labels[i], d.labels[i]);
    EXPECT_TRUE(restored->inputs[i] == d.inputs[i]);
  }
}

TEST(DatasetSerializationTest, RoundTripMultiRankTensors) {
  Dataset d;
  d.Add(Tensor({2, 3, 4}), 1);
  d.Add(Tensor({5}), 2);
  d.Add(Tensor({1, 28, 28}), 0);
  auto bytes = SerializeDataset(d);
  ASSERT_TRUE(bytes.ok());
  auto restored = DeserializeDataset(*bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->inputs[0].shape(), (std::vector<size_t>{2, 3, 4}));
  EXPECT_EQ(restored->inputs[1].shape(), (std::vector<size_t>{5}));
}

TEST(DatasetSerializationTest, EmptyDataset) {
  Dataset empty;
  auto bytes = SerializeDataset(empty);
  ASSERT_TRUE(bytes.ok());
  auto restored = DeserializeDataset(*bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

TEST(FileRoundTripTest, WeightsAndDatasets) {
  std::string dir = ::testing::TempDir();
  std::string weights_path = dir + "/dpaudit_weights_test.dpau";
  std::string dataset_path = dir + "/dpaudit_dataset_test.dpau";
  Rng rng(6);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(4, rng);
  ASSERT_TRUE(SaveWeights(weights_path, net).ok());
  ASSERT_TRUE(SaveDataset(dataset_path, d).ok());
  Network restored_net = TinyNetwork();
  ASSERT_TRUE(LoadWeights(weights_path, restored_net).ok());
  EXPECT_EQ(restored_net.FlatParams(), net.FlatParams());
  auto restored_data = LoadDataset(dataset_path);
  ASSERT_TRUE(restored_data.ok());
  EXPECT_EQ(restored_data->size(), 4u);
  std::remove(weights_path.c_str());
  std::remove(dataset_path.c_str());
}

TEST(FileRoundTripTest, MissingFileIsNotFound) {
  Network net = TinyNetwork();
  EXPECT_EQ(LoadWeights("/nonexistent/x.dpau", net).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(LoadDataset("/nonexistent/x.dpau").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace dpaudit
