// AppendLog: create-on-open, line round-trips, torn-tail detection and
// truncation, and the no-interleaving guarantee under concurrent writers.

#include "io/append_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace dpaudit {
namespace {

class AppendLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/dpaudit_append_log";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  /// Appends raw bytes (no newline added) to simulate a torn write.
  static void AppendRaw(const std::string& path, const std::string& bytes) {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }

  std::string dir_;
};

TEST_F(AppendLogTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadLogLines(Path("missing.jsonl")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(AppendLogTest, RoundTripsLinesAndCreatesParentDirs) {
  const std::string path = Path("nested/deeper/log.jsonl");
  AppendLog log;
  ASSERT_TRUE(log.Open(path).ok());
  EXPECT_TRUE(log.is_open());
  ASSERT_TRUE(log.Append("{\"a\":1}").ok());
  ASSERT_TRUE(log.Append("{\"b\":2}").ok());
  log.Close();
  EXPECT_FALSE(log.is_open());

  StatusOr<AppendLogContents> contents = ReadLogLines(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_EQ(contents->lines,
            (std::vector<std::string>{"{\"a\":1}", "{\"b\":2}"}));
  EXPECT_FALSE(contents->torn_tail);
  EXPECT_EQ(static_cast<unsigned long long>(contents->valid_bytes),
            std::filesystem::file_size(path));
}

TEST_F(AppendLogTest, DetectsTornTailAndReportsValidBytes) {
  const std::string path = Path("torn.jsonl");
  AppendLog log;
  ASSERT_TRUE(log.Open(path).ok());
  ASSERT_TRUE(log.Append("complete line").ok());
  log.Close();
  const long long complete_size =
      static_cast<long long>(std::filesystem::file_size(path));
  AppendRaw(path, "torn li");  // crash mid-write: no terminating newline

  StatusOr<AppendLogContents> contents = ReadLogLines(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_EQ(contents->lines, std::vector<std::string>{"complete line"});
  EXPECT_TRUE(contents->torn_tail);
  EXPECT_EQ(contents->valid_bytes, complete_size);
}

TEST_F(AppendLogTest, OpenWithTruncateCutsTheTornTail) {
  const std::string path = Path("recover.jsonl");
  {
    AppendLog log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(log.Append("row 1").ok());
  }
  AppendRaw(path, "half a ro");
  StatusOr<AppendLogContents> torn = ReadLogLines(path);
  ASSERT_TRUE(torn.ok());
  ASSERT_TRUE(torn->torn_tail);

  AppendLog log;
  ASSERT_TRUE(log.Open(path, torn->valid_bytes).ok());
  ASSERT_TRUE(log.Append("row 2").ok());
  log.Close();

  StatusOr<AppendLogContents> contents = ReadLogLines(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->lines, (std::vector<std::string>{"row 1", "row 2"}));
  EXPECT_FALSE(contents->torn_tail);
}

TEST_F(AppendLogTest, DoubleOpenFailsCloseIsIdempotent) {
  AppendLog log;
  ASSERT_TRUE(log.Open(Path("once.jsonl")).ok());
  EXPECT_FALSE(log.Open(Path("twice.jsonl")).ok());
  log.Close();
  log.Close();
  ASSERT_TRUE(log.Open(Path("twice.jsonl")).ok());
}

TEST_F(AppendLogTest, ConcurrentWritersNeverInterleaveLines) {
  const std::string path = Path("concurrent.jsonl");
  AppendLog log;
  ASSERT_TRUE(log.Open(path).ok());
  // 13 threads x 40 distinct long lines each; every line must come back
  // intact — a torn or interleaved write would corrupt the padding or the
  // (writer, sequence) tag.
  constexpr size_t kWriters = 13;
  constexpr size_t kLines = 40;
  ThreadPool::ParallelFor(kWriters * kLines, kWriters, [&](size_t i) {
    const size_t writer = i / kLines;
    const size_t seq = i % kLines;
    std::string line = "writer=" + std::to_string(writer) +
                       " seq=" + std::to_string(seq) + " pad=";
    line.append(256 + (i % 97), 'x');
    ASSERT_TRUE(log.Append(line).ok());
  });
  log.Close();

  StatusOr<AppendLogContents> contents = ReadLogLines(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents->torn_tail);
  ASSERT_EQ(contents->lines.size(), kWriters * kLines);
  std::set<std::string> seen;
  for (const std::string& line : contents->lines) {
    const size_t pad = line.find(" pad=");
    ASSERT_NE(pad, std::string::npos) << line.substr(0, 64);
    for (size_t i = pad + 5; i < line.size(); ++i) {
      ASSERT_EQ(line[i], 'x') << "corrupted padding in: "
                              << line.substr(0, 64);
    }
    seen.insert(line.substr(0, pad));
  }
  EXPECT_EQ(seen.size(), kWriters * kLines);  // every (writer, seq) intact
}

}  // namespace
}  // namespace dpaudit
