#include "data/idx_format.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace dpaudit {
namespace {

IdxData SmallImages() {
  // Two 2x3 "images".
  IdxData images;
  images.dims = {2, 2, 3};
  images.values = {0,   51,  102, 153, 204, 255,
                   255, 204, 153, 102, 51,  0};
  return images;
}

IdxData SmallLabels() {
  IdxData labels;
  labels.dims = {2};
  labels.values = {7, 3};
  return labels;
}

TEST(IdxSerializeTest, RoundTripsThroughBytes) {
  IdxData original = SmallImages();
  auto bytes = SerializeIdx(original);
  ASSERT_TRUE(bytes.ok());
  auto parsed = ParseIdx(*bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->dims, original.dims);
  EXPECT_EQ(parsed->values, original.values);
}

TEST(IdxSerializeTest, HeaderIsBigEndian) {
  IdxData labels = SmallLabels();
  auto bytes = SerializeIdx(labels);
  ASSERT_TRUE(bytes.ok());
  // magic: 00 00 08 01; extent 2 big-endian.
  EXPECT_EQ((*bytes)[0], 0);
  EXPECT_EQ((*bytes)[1], 0);
  EXPECT_EQ((*bytes)[2], 0x08);
  EXPECT_EQ((*bytes)[3], 1);
  EXPECT_EQ((*bytes)[4], 0);
  EXPECT_EQ((*bytes)[5], 0);
  EXPECT_EQ((*bytes)[6], 0);
  EXPECT_EQ((*bytes)[7], 2);
}

TEST(IdxParseTest, RejectsMalformedStreams) {
  EXPECT_FALSE(ParseIdx({}).ok());
  EXPECT_FALSE(ParseIdx({0, 0, 0x08}).ok());            // too short
  EXPECT_FALSE(ParseIdx({1, 0, 0x08, 1, 0, 0, 0, 1, 9}).ok());  // bad magic
  EXPECT_FALSE(ParseIdx({0, 0, 0x0D, 1, 0, 0, 0, 1, 9}).ok());  // float type
  EXPECT_FALSE(ParseIdx({0, 0, 0x08, 0}).ok());          // rank 0
  // Payload shorter than dims claim.
  EXPECT_FALSE(ParseIdx({0, 0, 0x08, 1, 0, 0, 0, 5, 1, 2}).ok());
}

TEST(IdxParseTest, AcceptsMinimalValidStream) {
  auto parsed = ParseIdx({0, 0, 0x08, 1, 0, 0, 0, 2, 42, 43});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->dims, std::vector<uint32_t>{2});
  EXPECT_EQ(parsed->values, (std::vector<uint8_t>{42, 43}));
}

TEST(IdxToDatasetTest, ConvertsAndScales) {
  auto dataset = IdxToDataset(SmallImages(), SmallLabels());
  ASSERT_TRUE(dataset.ok());
  ASSERT_EQ(dataset->size(), 2u);
  EXPECT_EQ(dataset->labels[0], 7u);
  EXPECT_EQ(dataset->labels[1], 3u);
  EXPECT_EQ(dataset->inputs[0].shape(), (std::vector<size_t>{1, 2, 3}));
  EXPECT_FLOAT_EQ(dataset->inputs[0][0], 0.0f);
  EXPECT_FLOAT_EQ(dataset->inputs[0][5], 1.0f);
  EXPECT_NEAR(dataset->inputs[0][1], 0.2, 0.001);
}

TEST(IdxToDatasetTest, LimitTruncates) {
  auto dataset = IdxToDataset(SmallImages(), SmallLabels(), 1);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->size(), 1u);
}

TEST(IdxToDatasetTest, RejectsMismatches) {
  IdxData labels = SmallLabels();
  labels.dims = {3};
  labels.values = {1, 2, 3};
  EXPECT_FALSE(IdxToDataset(SmallImages(), labels).ok());
  EXPECT_FALSE(IdxToDataset(SmallLabels(), SmallLabels()).ok());  // rank 1
}

TEST(IdxFileTest, WriteReadRoundTrip) {
  std::string dir = ::testing::TempDir();
  std::string images_path = dir + "/dpaudit_idx_images_test";
  std::string labels_path = dir + "/dpaudit_idx_labels_test";
  ASSERT_TRUE(WriteIdxFile(images_path, SmallImages()).ok());
  ASSERT_TRUE(WriteIdxFile(labels_path, SmallLabels()).ok());
  auto dataset = LoadIdxDataset(images_path, labels_path);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->size(), 2u);
  std::remove(images_path.c_str());
  std::remove(labels_path.c_str());
}

TEST(IdxFileTest, MissingFileIsNotFound) {
  auto result = ReadIdxFile("/nonexistent/dpaudit.idx");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dpaudit
