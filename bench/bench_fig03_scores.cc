// Figure 3: rho_beta and rho_alpha across (epsilon, delta).
//
// Panel (a): rho_beta depends only on epsilon (Theorem 1 holds for any
// mechanism; the delta term merely bounds the failure probability), so the
// curves for different delta coincide. Panel (b): rho_alpha (Theorem 2)
// depends strongly on delta through the Gaussian calibration factor.

#include <iostream>

#include "bench/bench_common.h"
#include "core/scores.h"

namespace dpaudit {
namespace {

constexpr double kDeltas[] = {1e-2, 1e-4, 1e-6, 1e-8};

void Run() {
  std::cout << "Figure 3: rho_beta and rho_alpha for various (epsilon, "
               "delta) under M_Gau\n";

  TableWriter beta({"epsilon", "rho_beta (any delta)"});
  for (double eps = 0.0; eps <= 10.0 + 1e-9; eps += 0.5) {
    beta.AddRow(
        {TableWriter::Cell(eps, 2), TableWriter::Cell(*RhoBeta(eps), 4)});
  }
  bench::Emit("panel (a): rho_beta vs epsilon", beta);

  TableWriter alpha({"epsilon", "d=1e-2", "d=1e-4", "d=1e-6", "d=1e-8"});
  for (double eps = 0.25; eps <= 10.0 + 1e-9; eps += 0.5) {
    std::vector<std::string> row = {TableWriter::Cell(eps, 2)};
    for (double delta : kDeltas) {
      row.push_back(TableWriter::Cell(*RhoAlpha(eps, delta), 4));
    }
    alpha.AddRow(row);
  }
  bench::Emit("panel (b): rho_alpha vs epsilon per delta", alpha);

  // The paper's k-dimensional remark: with f(D) and f(D') differing by 1 in
  // each of k dimensions, GS = sqrt(k) and the bound is dimension-free —
  // the advantage depends only on (epsilon, delta).
  TableWriter dims({"k (dims)", "GS = sqrt(k)", "rho_alpha(eps=2, d=1e-6)"});
  for (size_t k : {1, 4, 16, 64, 256}) {
    dims.AddRow({TableWriter::Cell(k),
                 TableWriter::Cell(std::sqrt(static_cast<double>(k)), 3),
                 TableWriter::Cell(*RhoAlpha(2.0, 1e-6), 4)});
  }
  bench::Emit("multidimensional invariance check", dims);
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
