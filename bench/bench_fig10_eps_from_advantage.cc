// Figure 10: empirical privacy loss epsilon' from the empirical membership
// advantage (inverse of Theorem 2), against the target epsilon, for
// Delta f = LS vs GS (bounded DP).
//
// Expected shape: LS tracks the diagonal within the advantage's sampling
// confidence interval (the paper notes occasional eps' > eps for exactly
// this reason); GS stays below. The advantage estimator carries ~1/sqrt(R)
// binomial noise — this binary uses the full repetition budget per cell and
// reports the Wilson interval so low-R runs read honestly.

#include <iostream>

#include "bench/bench_audit_sweep.h"
#include "stats/summary.h"
#include "util/table_writer.h"

namespace dpaudit {
namespace {

void Run() {
  bench::BenchParams params;
  bench::PrintHeader("Figure 10: epsilon' from empirical advantage", params);
  if (TraceStore* store = TraceStore::FromEnv()) {
    std::cerr << "trace cache: " << store->directory() << "\n";
  }
  // Both tasks feed one flattened (cell x repetition) grid: Purchase cells
  // start the moment workers drain the MNIST tail (core/sweep_scheduler.h).
  bench::Task tasks[] = {bench::MakeMnistTask(params),
                         bench::MakePurchaseTask(params)};
  auto rows_per_task = bench::RunAuditSweeps(params, {&tasks[0], &tasks[1]},
                                             /*reps_override=*/params.reps);
  for (size_t t = 0; t < 2; ++t) {
    const bench::Task& task = tasks[t];
    const std::vector<bench::AuditSweepRow>& rows = rows_per_task[t];
    TableWriter table({"dataset", "target eps", "Delta f", "Adv",
                       "Adv 95% lo", "Adv 95% hi", "eps' (Adv^DI,Gau)",
                       "eps' / eps"});
    for (const bench::AuditSweepRow& row : rows) {
      double eps_prime = row.report.epsilon_from_advantage;
      Interval ci = WilsonInterval(row.wins, row.repetitions);
      table.AddRow({row.dataset, TableWriter::Cell(row.target_epsilon, 2),
                    row.sensitivity, TableWriter::Cell(row.advantage, 3),
                    TableWriter::Cell(2.0 * ci.lo - 1.0, 3),
                    TableWriter::Cell(2.0 * ci.hi - 1.0, 3),
                    TableWriter::Cell(eps_prime, 3),
                    TableWriter::Cell(eps_prime / row.target_epsilon, 3)});
    }
    bench::Emit(task.name + ": eps' from empirical advantage", table);
  }
  std::cout << "\nexpected shape: LS rows dominate GS rows; the point "
               "estimates are binomial-noisy at bench-scale repetitions "
               "(negative advantages audit to eps' = 0) and converge toward "
               "Figure 8 as DPAUDIT_REPS grows, as the paper predicts\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
