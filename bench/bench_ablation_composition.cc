// Ablation (Section 5.2): RDP composition vs sequential composition.
//
// For a fixed posterior-belief bound rho_beta (total epsilon via Eq. 10) and
// k update steps, compare the per-step noise multiplier each composition
// theorem admits and — in the other direction — the rho_beta each certifies
// for the same noise. RDP admits markedly less noise for the same bound,
// which is why the paper adapts both scores to RDP.

#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "core/scores.h"
#include "dp/calibration.h"

namespace dpaudit {
namespace {

void Run() {
  const double rho_beta = 0.9;
  const double delta = 0.001;
  const double epsilon = *EpsilonForRhoBeta(rho_beta);
  std::cout << "Ablation: RDP vs sequential composition (rho_beta = 0.9, "
               "eps = "
            << epsilon << ", delta = " << delta << ")\n";

  TableWriter table({"k", "z (sequential)", "z (RDP)", "noise ratio",
                     "rho_beta cert. by RDP at z_seq"});
  for (size_t k : {1, 5, 10, 30, 100, 300}) {
    // Sequential: per-step (eps/k, delta/k), z from Eq. 1.
    double per_eps = epsilon / static_cast<double>(k);
    double per_delta = delta / static_cast<double>(k);
    double z_seq = GaussianCalibrationFactor(per_delta) / per_eps;
    // RDP: z from the accountant bisection.
    double z_rdp = *NoiseMultiplierForTargetEpsilon(epsilon, delta, k);
    // What rho_beta would RDP certify if we (wastefully) used z_seq?
    RdpAccountant accountant;
    accountant.AddGaussianSteps(z_seq, k);
    double eps_at_zseq = *accountant.GetEpsilon(delta);
    table.AddRow({TableWriter::Cell(k), TableWriter::Cell(z_seq, 3),
                  TableWriter::Cell(z_rdp, 3),
                  TableWriter::Cell(z_seq / z_rdp, 3),
                  TableWriter::Cell(*RhoBeta(eps_at_zseq), 4)});
  }
  bench::Emit("per-step noise multiplier for a fixed rho_beta", table);
  std::cout << "\nexpected shape: noise ratio grows with k (RDP ~sqrt(k) vs "
               "sequential ~k); the last column shows sequential noise "
               "over-protects (certified rho_beta << 0.9)\n";

  // The delta side of the Section 5.2 argument: composing k steps, RDP's
  // effective composed delta behaves like delta_i^k versus k * delta_i.
  TableWriter deltas({"k", "delta_i", "sequential k*delta_i",
                      "RDP delta_i^k"});
  const double delta_i = 0.01;
  for (size_t k : {1, 2, 3, 5, 10}) {
    deltas.AddRow(
        {TableWriter::Cell(k), TableWriter::Cell(delta_i, 4),
         TableWriter::Cell(static_cast<double>(k) * delta_i, 6),
         TableWriter::Cell(std::pow(delta_i, static_cast<double>(k)), 10)});
  }
  bench::Emit("composed failure probability", deltas);
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
