// Figure 2: error regions of A_DI,Gau for varying epsilon.
//
// Two Gaussian output distributions one sensitivity unit apart; the Bayes
// decision boundary sits halfway between the means. The shaded error region
// of the paper is the mass each density puts on the wrong side; squeezing
// epsilon from 6 to 3 (delta = 1e-6) widens the noise and grows the error
// region, shrinking Adv^DI,Gau.

#include <iostream>

#include "bench/bench_common.h"
#include "core/scores.h"
#include "dp/calibration.h"
#include "stats/normal.h"

namespace dpaudit {
namespace {

void Run() {
  const double delta = 1e-6;
  const double sensitivity = 1.0;
  std::cout << "Figure 2: error regions for varying epsilon, M_Gau\n";

  TableWriter summary({"epsilon", "sigma", "Pr(error)", "Adv^DI,Gau",
                       "rho_alpha bound"});
  for (double epsilon : {6.0, 3.0}) {
    double sigma = *GaussianSigma({epsilon, delta}, sensitivity);
    // Decision boundary at Df/2; error = mass of N(0, sigma^2) beyond it.
    double error = 1.0 - NormalCdf(sensitivity / (2.0 * sigma));
    double advantage = GaussianAdvantage(sensitivity / sigma);
    summary.AddRow({TableWriter::Cell(epsilon, 1),
                    TableWriter::Cell(sigma, 4),
                    TableWriter::Cell(error, 4),
                    TableWriter::Cell(advantage, 4),
                    TableWriter::Cell(*RhoAlpha(epsilon, delta), 4)});
  }
  bench::Emit("summary per epsilon (panel captions)", summary);

  for (double epsilon : {6.0, 3.0}) {
    double sigma = *GaussianSigma({epsilon, delta}, sensitivity);
    TableWriter curve({"r", "pdf@f(D)", "pdf@f(D')", "in_error_region"});
    for (double r = -2.0; r <= 3.0 + 1e-9; r += 0.25) {
      // Error region of the D-hypothesis: observations past the boundary.
      bool err = r > sensitivity / 2.0;
      curve.AddRow({TableWriter::Cell(r, 2),
                    TableWriter::Cell(NormalPdf(r, 0.0, sigma), 4),
                    TableWriter::Cell(NormalPdf(r, sensitivity, sigma), 4),
                    err ? "yes" : "no"});
    }
    bench::Emit("panel: epsilon = " + TableWriter::Cell(epsilon, 0), curve);
  }
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
