// Ablation: classic (paper Eq. 1) vs analytic (Balle-Wang) Gaussian
// calibration, and both vs the RDP bisection used for multi-step training.
//
// The identifiability scores transform (eps, delta); how much noise a given
// (eps, delta) costs depends on the calibration. This bench quantifies the
// noise each method requires for the Table 1 grid — the practical payoff of
// the tighter analyses.

#include <iostream>

#include "bench/bench_common.h"
#include "core/scores.h"
#include "dp/analytic_gaussian.h"
#include "dp/calibration.h"

namespace dpaudit {
namespace {

void Run() {
  std::cout << "Ablation: Gaussian calibration methods (sensitivity 1)\n";

  TableWriter single({"epsilon", "delta", "sigma Eq.1", "sigma analytic",
                      "savings", "eps back-audited (analytic)"});
  for (double eps : {0.08, 1.1, 2.2, 4.6}) {
    for (double delta : {1e-3, 1e-6}) {
      double classic = *GaussianSigma({eps, delta}, 1.0);
      double analytic = *AnalyticGaussianSigma({eps, delta}, 1.0);
      double audited = *AnalyticGaussianEpsilon(classic, delta, 1.0);
      single.AddRow({TableWriter::Cell(eps, 2),
                     TableWriter::Cell(delta, 6),
                     TableWriter::Cell(classic, 3),
                     TableWriter::Cell(analytic, 3),
                     TableWriter::Cell(classic / analytic, 3),
                     TableWriter::Cell(audited, 3)});
    }
  }
  bench::Emit("single release: Eq. 1 vs exact characterization", single);
  std::cout << "\nreading: 'eps back-audited' is the epsilon the Eq.1 noise "
               "actually guarantees — below target means Eq. 1 over-noises, "
               "exactly the slack the paper's audit exposes for loose "
               "sensitivity.\n";

  // Outside its eps <= 1 validity domain, Eq. 1 can flip to UNDER-noising
  // (Balle & Wang 2018) — worth knowing when pushing rho_beta toward 1.
  {
    double classic = *GaussianSigma({8.0, 0.01}, 1.0);
    double exact_delta = *AnalyticGaussianDelta(classic, 8.0, 1.0);
    std::cout << "caution: at (eps = 8, delta = 0.01) the Eq. 1 sigma = "
              << classic << " only achieves delta = " << exact_delta
              << " (> 0.01): Eq. 1 under-noises outside eps <= 1.\n";
  }

  TableWriter multi({"k", "z per-step Eq.1 (delta/k)", "z RDP bisection",
                     "RDP savings"});
  const double eps = *EpsilonForRhoBeta(0.9);
  const double delta = 0.001;
  for (size_t k : {1, 10, 30, 100}) {
    double per_eps = eps / static_cast<double>(k);
    double per_delta = delta / static_cast<double>(k);
    double z_eq1 = GaussianCalibrationFactor(per_delta) / per_eps;
    double z_rdp = *NoiseMultiplierForTargetEpsilon(eps, delta, k);
    multi.AddRow({TableWriter::Cell(k), TableWriter::Cell(z_eq1, 3),
                  TableWriter::Cell(z_rdp, 3),
                  TableWriter::Cell(z_eq1 / z_rdp, 3)});
  }
  bench::Emit("k-step training at rho_beta = 0.9", multi);
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
