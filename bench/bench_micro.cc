// Microbenchmarks (google-benchmark) for the library's hot paths: noise
// mechanisms, accountant queries, belief updates, per-example gradients,
// and the synthetic data generators.

#include <benchmark/benchmark.h>

#include <atomic>

#include "core/adversary.h"
#include "core/belief.h"
#include "data/dissimilarity.h"
#include "data/synthetic_mnist.h"
#include "data/synthetic_purchase.h"
#include "dp/mechanism.h"
#include "dp/rdp_accountant.h"
#include "nn/gradient_engine.h"
#include "nn/network.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "stats/normal.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace dpaudit {
namespace {

void BM_GaussianPerturbVector(benchmark::State& state) {
  GaussianMechanism mechanism(1.0);
  Rng rng(1);
  std::vector<float> values(static_cast<size_t>(state.range(0)), 0.0f);
  for (auto _ : state) {
    mechanism.Perturb(values, rng);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GaussianPerturbVector)->Arg(1024)->Arg(65536);

void BM_GaussianLogDensity(benchmark::State& state) {
  GaussianMechanism mechanism(1.0);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<float> observed(n, 0.5f);
  std::vector<float> center(n, 0.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.LogDensity(observed, center));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GaussianLogDensity)->Arg(1024)->Arg(65536);

// The two gradient dimensionalities the paper's experiments release at:
// the MNIST CNN-ish network and the Purchase-100 MLP. Applied to the
// mechanism/adversary hot-path benchmarks below so their numbers speak
// directly to fig06-fig10 wall-clock. scripts/run_experiment_bench.sh
// snapshots these into BENCH_experiment_suite.json.
void GradientDims(benchmark::internal::Benchmark* bench) {
  static const size_t kMnistParams = BuildMnistNetwork().NumParams();
  static const size_t kPurchaseParams = BuildPurchaseNetwork().NumParams();
  bench->Arg(static_cast<int64_t>(kMnistParams))
      ->Arg(static_cast<int64_t>(kPurchaseParams));
}

// Gaussian noise application at paper gradient dimensionality (batched
// FillGaussian + runtime-dispatched noise kernel).
void BM_GaussianPerturb(benchmark::State& state) {
  GaussianMechanism mechanism(1.0);
  Rng rng(11);
  std::vector<float> values(static_cast<size_t>(state.range(0)), 0.25f);
  for (auto _ : state) {
    mechanism.Perturb(values, rng);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GaussianPerturb)->Apply(GradientDims);

// The adversary's fused per-step likelihood scoring: one pass over the
// released vector producing both hypotheses' log-densities.
void BM_LogLikelihoodRatio(benchmark::State& state) {
  GaussianMechanism mechanism(1.0);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<float> released(n);
  std::vector<float> sum_d(n);
  std::vector<float> sum_dprime(n);
  Rng rng(12);
  for (size_t i = 0; i < n; ++i) {
    released[i] = static_cast<float>(rng.Gaussian());
    sum_d[i] = static_cast<float>(0.1 * rng.Gaussian());
    sum_dprime[i] = static_cast<float>(0.1 * rng.Gaussian());
  }
  double log_d = 0.0;
  double log_dprime = 0.0;
  for (auto _ : state) {
    mechanism.LogDensityPair(released, sum_d, sum_dprime, &log_d,
                             &log_dprime);
    benchmark::DoNotOptimize(log_d);
    benchmark::DoNotOptimize(log_dprime);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogLikelihoodRatio)->Apply(GradientDims);

// A full adversary step: likelihood pair + posterior update + bookkeeping —
// the exact per-release cost inside RunDpSgd's observer hook.
void BM_DiAdversaryOnStep(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<float> released(n);
  std::vector<float> sum_d(n);
  std::vector<float> sum_dprime(n);
  Rng rng(13);
  for (size_t i = 0; i < n; ++i) {
    released[i] = static_cast<float>(rng.Gaussian());
    sum_d[i] = static_cast<float>(0.1 * rng.Gaussian());
    sum_dprime[i] = static_cast<float>(0.1 * rng.Gaussian());
  }
  size_t step = 0;
  DiAdversary adversary;
  for (auto _ : state) {
    adversary.OnStep(step++, sum_d, sum_dprime, released, 1.0);
    benchmark::DoNotOptimize(adversary.FinalBeliefD());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DiAdversaryOnStep)->Apply(GradientDims);

void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.1234;
  for (auto _ : state) {
    benchmark::DoNotOptimize(NormalQuantile(p));
    p = p < 0.9 ? p + 1e-6 : 0.1;
  }
}
BENCHMARK(BM_NormalQuantile);

void BM_RdpAccountantEpsilon(benchmark::State& state) {
  RdpAccountant accountant;
  accountant.AddGaussianSteps(1.3, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(accountant.GetEpsilon(1e-5));
  }
}
BENCHMARK(BM_RdpAccountantEpsilon)->Arg(30)->Arg(10000);

void BM_NoiseCalibrationBisection(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        NoiseMultiplierForTargetEpsilon(2.2, 0.001, 30));
  }
}
BENCHMARK(BM_NoiseCalibrationBisection);

void BM_BeliefUpdate(benchmark::State& state) {
  PosteriorBeliefTracker tracker;
  double a = -1.0;
  double b = -1.1;
  for (auto _ : state) {
    tracker.Observe(a, b);
    benchmark::DoNotOptimize(tracker.belief_d());
  }
}
BENCHMARK(BM_BeliefUpdate);

void BM_MnistPerExampleGradient(benchmark::State& state) {
  Network net = BuildMnistNetwork();
  Rng rng(2);
  net.Initialize(rng);
  SyntheticMnistConfig config;
  Tensor image = RenderSyntheticDigit(3, config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.PerExampleGradient(image, 3));
  }
}
BENCHMARK(BM_MnistPerExampleGradient);

void BM_PurchasePerExampleGradient(benchmark::State& state) {
  Network net = BuildPurchaseNetwork();
  Rng rng(3);
  net.Initialize(rng);
  SyntheticPurchaseGenerator generator(SyntheticPurchaseConfig{}, 4);
  Tensor record = generator.Sample(7, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.PerExampleGradient(record, 7));
  }
}
BENCHMARK(BM_PurchasePerExampleGradient);

// Clipped-gradient-sum throughput through the gradient engine. Args are
// {batch size, engine worker threads}. items_processed counts examples, so
// per-example cost is directly comparable across batch sizes and thread
// counts. scripts/run_gradient_bench.sh snapshots these into
// BENCH_gradient_engine.json.
void BM_ClippedGradientSumMnist(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Network net = BuildMnistNetwork();
  Rng rng(9);
  net.Initialize(rng);
  SyntheticMnistConfig config;
  std::vector<Tensor> inputs;
  std::vector<size_t> labels;
  for (size_t i = 0; i < batch; ++i) {
    inputs.push_back(RenderSyntheticDigit(i % 10, config, rng));
    labels.push_back(i % 10);
  }
  GradientEngine::Options options;
  options.threads = static_cast<size_t>(state.range(1));
  GradientEngine engine(net, options);
  engine.SyncParams(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.ClippedGradientSum(inputs, labels, 1.0));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ClippedGradientSumMnist)
    ->ArgsProduct({{16, 64, 256}, {1, 4, 8}})
    ->Unit(benchmark::kMillisecond);

// Batched lane path vs the scalar path on the same workload. Args are
// {batch size, engine worker threads, batch lanes} with lanes = 0 selecting
// the legacy one-example-at-a-time path; results are bit-identical, only
// throughput differs. scripts/run_experiment_bench.sh snapshots the
// single-thread b64 pair into BENCH_batched_lanes.json.
void BM_ClippedGradientSumMnistLanes(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Network net = BuildMnistNetwork();
  Rng rng(9);
  net.Initialize(rng);
  SyntheticMnistConfig config;
  std::vector<Tensor> inputs;
  std::vector<size_t> labels;
  for (size_t i = 0; i < batch; ++i) {
    inputs.push_back(RenderSyntheticDigit(i % 10, config, rng));
    labels.push_back(i % 10);
  }
  GradientEngine::Options options;
  options.threads = static_cast<size_t>(state.range(1));
  options.batch_lanes = static_cast<size_t>(state.range(2));
  GradientEngine engine(net, options);
  engine.SyncParams(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.ClippedGradientSum(inputs, labels, 1.0));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ClippedGradientSumMnistLanes)
    ->ArgsProduct({{64}, {1}, {0, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_ClippedGradientSumPurchase(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Network net = BuildPurchaseNetwork();
  Rng rng(10);
  net.Initialize(rng);
  SyntheticPurchaseGenerator generator(SyntheticPurchaseConfig{}, 4);
  std::vector<Tensor> inputs;
  std::vector<size_t> labels;
  for (size_t i = 0; i < batch; ++i) {
    inputs.push_back(generator.Sample(i % 100, rng));
    labels.push_back(i % 100);
  }
  GradientEngine::Options options;
  options.threads = static_cast<size_t>(state.range(1));
  GradientEngine engine(net, options);
  engine.SyncParams(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.ClippedGradientSum(inputs, labels, 1.0));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ClippedGradientSumPurchase)
    ->ArgsProduct({{16, 64, 256}, {1, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_RenderSyntheticDigit(benchmark::State& state) {
  SyntheticMnistConfig config;
  Rng rng(5);
  size_t digit = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RenderSyntheticDigit(digit, config, rng));
    digit = (digit + 1) % 10;
  }
}
BENCHMARK(BM_RenderSyntheticDigit);

void BM_Ssim28x28(benchmark::State& state) {
  SyntheticMnistConfig config;
  Rng rng(6);
  Tensor a = RenderSyntheticDigit(1, config, rng);
  Tensor b = RenderSyntheticDigit(8, config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ssim(a, b));
  }
}
BENCHMARK(BM_Ssim28x28);

// Telemetry overhead at an instrumentation site. The disabled numbers are
// the acceptance gate: a dormant DPAUDIT_SPAN / DPAUDIT_METRIC_COUNT must
// cost one relaxed atomic load (low single-digit ns), since these sit inside
// the per-step training loop. The enabled variants show the full cost of a
// live site for comparison.
void BM_TelemetrySpanDisabled(benchmark::State& state) {
  obs::EnableTelemetryForTest(false);
  for (auto _ : state) {
    DPAUDIT_SPAN("bench_disabled");
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_TelemetrySpanDisabled);

void BM_TelemetryCounterDisabled(benchmark::State& state) {
  obs::EnableTelemetryForTest(false);
  for (auto _ : state) {
    DPAUDIT_METRIC_COUNT("dpaudit_bench_disabled_total", 1);
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_TelemetryCounterDisabled);

void BM_TelemetrySpanEnabled(benchmark::State& state) {
  obs::EnableTelemetryForTest(true);
  for (auto _ : state) {
    DPAUDIT_SPAN("bench_enabled");
    benchmark::DoNotOptimize(&state);
  }
  obs::EnableTelemetryForTest(false);
}
BENCHMARK(BM_TelemetrySpanEnabled);

void BM_TelemetryCounterEnabled(benchmark::State& state) {
  obs::EnableTelemetryForTest(true);
  for (auto _ : state) {
    DPAUDIT_METRIC_COUNT("dpaudit_bench_enabled_total", 1);
    benchmark::DoNotOptimize(&state);
  }
  obs::EnableTelemetryForTest(false);
}
BENCHMARK(BM_TelemetryCounterEnabled);

// Pool-churn cost the persistent shared pool removed: the pre-scheduler
// ParallelFor constructed, spawned, and joined a fresh pool on EVERY call,
// which dominated short parallel regions (a 30-step experiment issues one
// region per trial batch). FreshPool reproduces that structure; SharedPool
// is the current dispatch path. The delta is pure thread spawn/join
// overhead.
void BM_ParallelForFreshPool(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::atomic<uint64_t> sink{0};
  for (auto _ : state) {
    ThreadPool pool(4);
    for (size_t i = 0; i < n; ++i) {
      pool.Schedule([&sink, i] {
        sink.fetch_add(i, std::memory_order_relaxed);
      });
    }
    pool.Wait();
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForFreshPool)->Arg(16)->Arg(256);

void BM_ParallelForSharedPool(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::atomic<uint64_t> sink{0};
  for (auto _ : state) {
    ThreadPool::ParallelFor(n, 4, [&sink](size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForSharedPool)->Arg(16)->Arg(256);

void BM_Hamming600(benchmark::State& state) {
  SyntheticPurchaseGenerator generator(SyntheticPurchaseConfig{}, 7);
  Rng rng(8);
  Tensor a = generator.Sample(1, rng);
  Tensor b = generator.Sample(2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HammingDistance(a, b));
  }
}
BENCHMARK(BM_Hamming600);

}  // namespace
}  // namespace dpaudit

// Custom main instead of BENCHMARK_MAIN(): google-benchmark rejects unknown
// flags, so --telemetry=<dir> is consumed here before Initialize sees argv.
int main(int argc, char** argv) {
  dpaudit::obs::TelemetryOptions options =
      dpaudit::obs::TelemetryOptionsFromEnv();
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr char kFlag[] = "--telemetry=";
    if (arg.rfind(kFlag, 0) == 0) {
      options.enabled = true;
      options.directory = arg.substr(sizeof(kFlag) - 1);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  dpaudit::obs::InitTelemetry(argv[0], options);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
