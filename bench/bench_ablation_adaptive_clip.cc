// Ablation (Section 7): adaptive clipping (Thakkar et al.) vs the fixed
// C = 3 the paper uses.
//
// The paper conjectures that adapting C to the shrinking gradient norms over
// training would (a) improve utility and (b) bring the audited epsilon'
// closer to the target under global sensitivity. This bench measures both:
// test accuracy and the three epsilon' estimators, fixed vs adaptive C, at
// rho_beta = 0.9 on the MNIST-like task.

#include <iostream>

#include "bench/bench_common.h"
#include "core/auditor.h"
#include "core/scores.h"
#include "dp/privacy_params.h"
#include "stats/summary.h"

namespace dpaudit {
namespace {

using bench::BenchParams;
using bench::Task;

void Run() {
  BenchParams params;
  bench::PrintHeader("Ablation: adaptive clipping", params);
  Task task = bench::MakeMnistTask(params);
  const double epsilon = *EpsilonForRhoBeta(0.9);

  TableWriter table({"clipping", "Delta f", "mean C (last step)",
                     "acc mean", "Adv^DI,Gau", "eps' (sens.)"});
  for (bool adaptive : {false, true}) {
    for (SensitivityMode mode :
         {SensitivityMode::kGlobal, SensitivityMode::kLocalHat}) {
      DiExperimentConfig config = bench::MakeScenarioConfig(
          params, task, epsilon, mode, NeighborMode::kBounded);
      config.dpsgd.adaptive_clipping = adaptive;
      auto summary = RunDiExperiment(task.architecture, task.d,
                                     task.d_prime_bounded, config,
                                     &task.test);
      DPAUDIT_CHECK_OK(summary.status());
      // Realized clip norm at the final step, averaged over trials. The
      // trainer records it; reconstruct from sigma for GS mode (sigma =
      // z * 2C) or report the configured C for fixed clipping.
      RunningSummary final_sigma;
      for (const DiTrialResult& trial : summary->trials) {
        final_sigma.Add(trial.sigmas.back());
      }
      double final_clip =
          mode == SensitivityMode::kGlobal
              ? final_sigma.mean() / (2.0 * config.dpsgd.noise_multiplier)
              : (adaptive ? -1.0 : config.dpsgd.clip_norm);
      double eps_sens =
          *EpsilonFromSensitivities(*summary, task.delta);
      table.AddRow({adaptive ? "adaptive" : "fixed C=3",
                    SensitivityModeToString(mode),
                    final_clip < 0 ? "n/a" : TableWriter::Cell(final_clip, 3),
                    TableWriter::Cell(Mean(summary->TestAccuracies()), 4),
                    TableWriter::Cell(summary->EmpiricalAdvantage(), 3),
                    TableWriter::Cell(eps_sens, 3)});
    }
  }
  bench::Emit("MNIST: fixed vs adaptive clipping (rho_beta = 0.9)", table);
  std::cout << "\nexpected shape: adaptive clipping moves C toward the "
               "median per-example gradient norm — DOWN when the initial C "
               "over-clips, UP (as here, where raw norms exceed C = 3) when "
               "it under-clips. In GS mode sigma = z * 2C follows C, so "
               "growing C trades utility for slack (eps' sinks further "
               "below the target " << epsilon << "); in LS mode eps' stays "
               "pinned at the target regardless, since noise tracks the "
               "factual sensitivity. Whether adaptation helps utility "
               "depends on where C starts relative to the norms (cf. the "
               "paper's C-is-a-balance discussion in Section 7).\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
