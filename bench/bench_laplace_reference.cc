// Reference case (Section 4.1 / Lee-Clifton): the scalar Laplace mechanism,
// where the posterior-belief bound rho_beta = 1/(1 + e^-eps) is exactly
// attained.
//
// For observations outside the interval between the two query answers, the
// Laplace log-likelihood ratio saturates at +-eps, so A_DI's single-step
// belief hits rho_beta exactly — the case Theorem 1 generalizes. This bench
// prints the belief as a function of the observation and verifies the
// saturation, plus a Monte Carlo estimate of how often the bound is reached.

#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "core/belief.h"
#include "core/scores.h"
#include "dp/calibration.h"
#include "dp/mechanism.h"
#include "util/random.h"

namespace dpaudit {
namespace {

void Run() {
  const double f_d = 0.0;
  const double f_dprime = 1.0;
  const double sensitivity = f_dprime - f_d;
  std::cout << "Laplace reference case: exact attainment of rho_beta "
               "(f(D)=0, f(D')=1)\n";

  TableWriter table({"epsilon", "rho_beta bound", "belief at r=-2",
                     "belief at r=0.5", "frac of draws at bound (MC)"});
  for (double epsilon : {0.5, 1.0, 2.2}) {
    LaplaceMechanism mechanism(*LaplaceScale(epsilon, sensitivity));
    auto belief_at = [&](double r) {
      return SingleObservationBelief(mechanism.LogDensityScalar(r, f_d),
                                     mechanism.LogDensityScalar(r, f_dprime));
    };
    // Monte Carlo: observing M(D), how often does the belief reach the
    // bound (within 1e-9)? Exactly when the draw lands at or below f(D)'s
    // side past the saturation region, i.e. r <= 0: probability 1/2.
    Rng rng(123);
    const int trials = 20000;
    int saturated = 0;
    double bound = *RhoBeta(epsilon);
    for (int i = 0; i < trials; ++i) {
      double r = mechanism.PerturbScalar(f_d, rng);
      if (std::fabs(belief_at(r) - bound) < 1e-9) ++saturated;
    }
    table.AddRow({TableWriter::Cell(epsilon, 2),
                  TableWriter::Cell(bound, 4),
                  TableWriter::Cell(belief_at(-2.0), 4),
                  TableWriter::Cell(belief_at(0.5), 4),
                  TableWriter::Cell(static_cast<double>(saturated) / trials,
                                    4)});
  }
  bench::Emit("scalar Laplace: belief saturation", table);
  std::cout << "\nreading: at r <= f(D) the likelihood ratio saturates at "
               "e^eps and the belief equals rho_beta exactly (~50% of "
               "draws); at the midpoint the belief is 0.5. The Gaussian "
               "mechanism never saturates, which is why the paper needs "
               "local sensitivity to make the bound tight for DPSGD.\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
