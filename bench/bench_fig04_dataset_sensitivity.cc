// Figure 4: distribution of the empirical local sensitivity
// n * ||g_hat(D) - g_hat(D')|| when D' is chosen by the dataset-sensitivity
// heuristic (Definition 6), for the top-3 candidates that MAXIMIZE DS versus
// the 3 that MINIMIZE it.
//
// The paper's claim: data-space dissimilarity (SSIM for MNIST, Hamming for
// Purchase) predicts gradient-space sensitivity, with a downward trend from
// the max-DS choice to the min-DS choice.

#include <iostream>

#include "bench/bench_common.h"
#include "data/dataset.h"
#include "dp/privacy_params.h"
#include "stats/summary.h"

namespace dpaudit {
namespace {

using bench::BenchParams;
using bench::Task;

void RunTask(const BenchParams& params, const Task& task) {
  auto ranked = RankBoundedCandidates(task.d, task.pool, task.dissimilarity);
  DPAUDIT_CHECK_OK(ranked.status());
  DPAUDIT_CHECK_GE(ranked->size(), 6u);

  struct Choice {
    std::string label;
    BoundedCandidate candidate;
  };
  std::vector<Choice> choices;
  for (size_t i = 0; i < 3; ++i) {
    choices.push_back({"max-" + std::to_string(i + 1), (*ranked)[i]});
  }
  for (size_t i = 0; i < 3; ++i) {
    choices.push_back({"min-" + std::to_string(3 - i),
                       (*ranked)[ranked->size() - 3 + i]});
  }

  TableWriter table({"D' choice", "DS(D,D')", "LS mean", "LS p25",
                     "LS median", "LS p75", "LS max"});
  size_t reps = std::max<size_t>(8, params.reps / 2);
  for (const Choice& choice : choices) {
    Dataset neighbor = MakeBoundedNeighbor(task.d, task.pool,
                                           choice.candidate);
    DiExperimentConfig config = bench::MakeScenarioConfig(
        params, task, /*epsilon=*/2.2, SensitivityMode::kGlobal,
        NeighborMode::kBounded);
    config.repetitions = reps;
    auto summary =
        RunDiExperiment(task.architecture, task.d, neighbor, config);
    DPAUDIT_CHECK_OK(summary.status());
    std::vector<double> sensitivities;
    for (const DiTrialResult& trial : summary->trials) {
      sensitivities.insert(sensitivities.end(),
                           trial.local_sensitivities.begin(),
                           trial.local_sensitivities.end());
    }
    table.AddRow({choice.label,
                  TableWriter::Cell(choice.candidate.dissimilarity, 4),
                  TableWriter::Cell(Mean(sensitivities), 4),
                  TableWriter::Cell(Quantile(sensitivities, 0.25), 4),
                  TableWriter::Cell(Quantile(sensitivities, 0.5), 4),
                  TableWriter::Cell(Quantile(sensitivities, 0.75), 4),
                  TableWriter::Cell(Quantile(sensitivities, 1.0), 4)});
  }
  bench::Emit(task.name + ": LS distribution per D' choice (bounded DP, "
                          "rho_beta=0.9)",
              table);
}

void Run() {
  BenchParams params;
  bench::PrintHeader("Figure 4: dataset sensitivity vs gradient sensitivity",
                     params);
  RunTask(params, bench::MakeMnistTask(params));
  RunTask(params, bench::MakePurchaseTask(params));
  std::cout << "\nexpected shape: max-* rows dominate min-* rows (downward "
               "trend from max to min DS)\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
