// Figure 7: distribution of MNIST test accuracy for rho_beta = 0.9 across
// the four sensitivity scenarios, plus a non-private baseline.
//
// The paper's shape: utility tracks Delta f. Global bounded (2C) adds the
// most noise and loses the most accuracy; local-sensitivity scaling and
// global unbounded preserve more utility, with LS-unbounded ~ GS-unbounded
// because per-example gradients saturate the clip norm.

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "core/dpsgd.h"
#include "core/scores.h"
#include "stats/summary.h"

namespace dpaudit {
namespace {

using bench::BenchParams;
using bench::Task;

struct Scenario {
  const char* label;
  SensitivityMode sensitivity;
  NeighborMode neighbors;
};

constexpr Scenario kScenarios[] = {
    {"LS bounded", SensitivityMode::kLocalHat, NeighborMode::kBounded},
    {"LS unbounded", SensitivityMode::kLocalHat, NeighborMode::kUnbounded},
    {"GS bounded", SensitivityMode::kGlobal, NeighborMode::kBounded},
    {"GS unbounded", SensitivityMode::kGlobal, NeighborMode::kUnbounded},
};

void Run() {
  BenchParams params;
  // Utility needs visible learning progress: the paper trains on |D| = 10^4
  // records; at our bench-scale |D| the same total weight movement needs a
  // larger step size. The privacy side is untouched (noise scales with the
  // gradient the same way).
  params.learning_rate = 0.15;
  // More records than the other benches: utility differences need data.
  params.mnist_n = std::max<size_t>(params.mnist_n, 60);
  bench::PrintHeader("Figure 7: test accuracy per scenario", params);
  Task task = bench::MakeMnistTask(params);
  const double epsilon = *EpsilonForRhoBeta(0.9);

  TableWriter table({"scenario", "acc mean", "acc p25", "acc median",
                     "acc p75", "acc max"});
  for (const Scenario& scenario : kScenarios) {
    DiExperimentConfig config = bench::MakeScenarioConfig(
        params, task, epsilon, scenario.sensitivity, scenario.neighbors);
    auto summary = RunDiExperiment(
        task.architecture, task.d,
        bench::NeighborFor(task, scenario.neighbors), config, &task.test);
    DPAUDIT_CHECK_OK(summary.status());
    std::vector<double> accuracies = summary->TestAccuracies();
    table.AddRow({scenario.label, TableWriter::Cell(Mean(accuracies), 4),
                  TableWriter::Cell(Quantile(accuracies, 0.25), 4),
                  TableWriter::Cell(Quantile(accuracies, 0.5), 4),
                  TableWriter::Cell(Quantile(accuracies, 0.75), 4),
                  TableWriter::Cell(Quantile(accuracies, 1.0), 4)});
  }

  // Non-private reference point.
  Rng rng(params.seed);
  Network init = task.architecture.Clone();
  init.Initialize(rng);
  auto baseline = RunNonPrivateSgd(init, task.d, params.epochs,
                                   params.learning_rate, params.clip_norm);
  DPAUDIT_CHECK_OK(baseline.status());
  double baseline_acc =
      baseline->Accuracy(task.test.inputs, task.test.labels);
  table.AddRow({"non-private", TableWriter::Cell(baseline_acc, 4), "-", "-",
                "-", "-"});

  bench::Emit("MNIST test accuracy (rho_beta = 0.9)", table);
  std::cout << "\nexpected shape: GS bounded lowest (largest Delta f = 2C); "
               "LS and GS-unbounded comparable and higher\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
