// Empirical soundness check of the RDP accountant: Monte Carlo estimates of
// the Renyi divergence between the Gaussian mechanism's two output
// distributions versus the accountant's per-step budget, across orders and
// noise levels — the measurable statement behind every epsilon this library
// reports.

#include <iostream>

#include "bench/bench_common.h"
#include "stats/divergence.h"
#include "stats/normal.h"
#include "util/random.h"

namespace dpaudit {
namespace {

void Run() {
  std::cout << "Accountant soundness: measured Renyi divergence vs budget\n"
            << "(mechanism N(0, z^2) vs N(1, z^2), 100k samples per cell)\n";
  Rng rng(2024);
  TableWriter table({"z", "alpha", "budget a/(2z^2)", "measured D_alpha",
                     "measured KL", "within budget"});
  for (double z : {0.8, 1.5, 3.0}) {
    std::vector<double> samples;
    samples.reserve(100000);
    for (int i = 0; i < 100000; ++i) samples.push_back(rng.Gaussian(0.0, z));
    auto log_p = [&](double x) { return NormalLogPdf(x, 0.0, z); };
    auto log_q = [&](double x) { return NormalLogPdf(x, 1.0, z); };
    double kl = *EstimateKlDivergence(samples, log_p, log_q);
    for (double alpha : {1.5, 2.0, 4.0, 8.0}) {
      double budget = GaussianRdpEpsilonFromNoiseMultiplier(alpha, z);
      double measured =
          *EstimateRenyiDivergence(alpha, samples, log_p, log_q);
      table.AddRow({TableWriter::Cell(z, 1), TableWriter::Cell(alpha, 1),
                    TableWriter::Cell(budget, 4),
                    TableWriter::Cell(measured, 4),
                    TableWriter::Cell(kl, 4),
                    measured <= budget * 1.1 + 0.02 ? "yes" : "NO"});
    }
  }
  bench::Emit("Gaussian mechanism divergences", table);
  std::cout << "\nexpected shape: every measured D_alpha sits at (it is "
               "exact for Gaussians) or below its budget; KL = 1/(2 z^2) is "
               "the alpha -> 1 limit\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
