// Figure 9: empirical privacy loss epsilon' from the maximal observed
// posterior belief beta-hat_k over all repetitions (Eq. 10 inverted),
// against the target epsilon, for Delta f = LS vs GS (bounded DP).
//
// Expected shape: LS tracks the diagonal (occasionally exceeding it — the
// overshoot probability is bounded by delta); GS stays below.

#include <iostream>

#include "bench/bench_audit_sweep.h"
#include "util/table_writer.h"

namespace dpaudit {
namespace {

void Run() {
  bench::BenchParams params;
  bench::PrintHeader("Figure 9: epsilon' from posterior beliefs", params);
  if (TraceStore* store = TraceStore::FromEnv()) {
    std::cerr << "trace cache: " << store->directory() << "\n";
  }
  // Both tasks feed one flattened (cell x repetition) grid: Purchase cells
  // start the moment workers drain the MNIST tail (core/sweep_scheduler.h).
  bench::Task tasks[] = {bench::MakeMnistTask(params),
                         bench::MakePurchaseTask(params)};
  auto rows_per_task =
      bench::RunAuditSweeps(params, {&tasks[0], &tasks[1]});
  for (size_t t = 0; t < 2; ++t) {
    const bench::Task& task = tasks[t];
    const std::vector<bench::AuditSweepRow>& rows = rows_per_task[t];
    TableWriter table({"dataset", "target eps", "Delta f", "eps' (beta_k)",
                       "eps' / eps"});
    for (const bench::AuditSweepRow& row : rows) {
      double eps_prime = row.report.epsilon_from_belief;
      table.AddRow({row.dataset, TableWriter::Cell(row.target_epsilon, 2),
                    row.sensitivity, TableWriter::Cell(eps_prime, 3),
                    TableWriter::Cell(eps_prime / row.target_epsilon, 3)});
    }
    bench::Emit(task.name + ": eps' from max beta_k", table);
  }
  std::cout << "\nexpected shape: LS ratios near (or slightly above) 1; GS "
               "ratios well below 1\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
