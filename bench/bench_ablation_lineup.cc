// Ablation (Section 2.3): differential identifiability over a lineup of
// |Psi| possible worlds (Lee & Clifton's original threat model).
//
// The paper works with |Psi| = 2, the DP worst case (Li et al.). This bench
// quantifies how the adversary's certainty about the true training dataset
// decays as the lineup grows, at fixed noise — the "how much is enough"
// question the DI line of work asked before it was tied to DP.

#include <iostream>

#include "bench/bench_common.h"
#include "core/multi_world.h"
#include "core/scores.h"

namespace dpaudit {
namespace {

using bench::BenchParams;
using bench::Task;

void Run() {
  BenchParams params;
  bench::PrintHeader("Ablation: multi-world lineup size", params);
  Task task = bench::MakePurchaseTask(params);

  // Candidate worlds: D plus lineups where one record is replaced by
  // successively ranked dataset-sensitivity candidates (all genuinely
  // different records, so worlds are distinguishable in principle).
  auto ranked = RankBoundedCandidates(task.d, task.pool, task.dissimilarity);
  DPAUDIT_CHECK_OK(ranked.status());

  const double strong_z = *NoiseMultiplierForTargetEpsilon(
      *EpsilonForRhoBeta(0.9), task.delta, params.epochs);
  struct NoiseSetting {
    const char* label;
    double z;
  };
  const NoiseSetting settings[] = {
      {"weak noise (z = 0.3)", 0.3},
      {"rho_beta = 0.9 noise", strong_z},
  };
  for (const NoiseSetting& setting : settings) {
    TableWriter table({"|Psi|", "chance rate", "identification rate",
                       "mean belief in truth", "max belief in truth"});
    for (size_t num_worlds : {2, 4, 8}) {
      std::vector<Dataset> worlds;
      worlds.push_back(task.d);
      for (size_t w = 1; w < num_worlds; ++w) {
        // Spread the picks across the ranking so the differing records are
        // distinct pool members.
        size_t pick = (w - 1) * (ranked->size() / num_worlds);
        worlds.push_back(MakeBoundedNeighbor(task.d, task.pool,
                                             (*ranked)[pick]));
      }
      MultiWorldExperimentConfig config;
      config.dpsgd.epochs = params.epochs;
      config.dpsgd.learning_rate = params.learning_rate;
      config.dpsgd.clip_norm = params.clip_norm;
      config.dpsgd.noise_multiplier = setting.z;
      config.repetitions = std::max<size_t>(10, params.reps / 2);
      config.seed = params.seed;
      auto summary = RunMultiWorldExperiment(task.architecture, worlds,
                                             /*true_world=*/0, config);
      DPAUDIT_CHECK_OK(summary.status());
      table.AddRow(
          {TableWriter::Cell(num_worlds),
           TableWriter::Cell(1.0 / static_cast<double>(num_worlds), 3),
           TableWriter::Cell(summary->identification_rate, 3),
           TableWriter::Cell(summary->mean_true_belief, 4),
           TableWriter::Cell(summary->max_true_belief, 4)});
    }
    bench::Emit(std::string("Purchase-100 lineup, ") + setting.label, table);
  }
  std::cout << "\nexpected shape: under weak noise the adversary stays well "
               "above chance at every lineup size; under rho_beta = 0.9 "
               "noise the posterior dilutes toward the uniform 1/|Psi| — "
               "DP-calibrated noise, not lineup size, provides the "
               "protection\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
