// Figure 5: sensitivities over the course of training for rho_beta = 0.9
// (epsilon = 2.2) and C = 3.
//
// Plots (as a per-step series) the global sensitivity reference (C for
// unbounded, 2C for bounded) against the mean realized local sensitivity
// LS_i = ||S_D - S_D'|| at each step, for both neighboring notions. The
// paper's observation: LS stays at or below GS, with bounded LS < 2C
// (the two differing clipped gradients do not point in opposite directions)
// and unbounded LS pinned near C while per-example gradients exceed C.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/scores.h"
#include "dp/privacy_params.h"
#include "stats/summary.h"

namespace dpaudit {
namespace {

using bench::BenchParams;
using bench::Task;

std::vector<RunningSummary> PerStepSensitivities(
    const BenchParams& params, const Task& task, NeighborMode neighbors) {
  DiExperimentConfig config = bench::MakeScenarioConfig(
      params, task, *EpsilonForRhoBeta(0.9), SensitivityMode::kGlobal,
      neighbors);
  auto summary = RunDiExperiment(task.architecture, task.d,
                                 bench::NeighborFor(task, neighbors), config);
  DPAUDIT_CHECK_OK(summary.status());
  std::vector<RunningSummary> per_step(params.epochs);
  for (const DiTrialResult& trial : summary->trials) {
    for (size_t i = 0; i < trial.local_sensitivities.size(); ++i) {
      per_step[i].Add(trial.local_sensitivities[i]);
    }
  }
  return per_step;
}

void RunTask(const BenchParams& params, const Task& task) {
  std::vector<RunningSummary> bounded =
      PerStepSensitivities(params, task, NeighborMode::kBounded);
  std::vector<RunningSummary> unbounded =
      PerStepSensitivities(params, task, NeighborMode::kUnbounded);

  TableWriter table({"step", "GS bounded (2C)", "LS bounded (mean)",
                     "LS bounded (max)", "GS unbounded (C)",
                     "LS unbounded (mean)", "LS unbounded (max)"});
  for (size_t i = 0; i < params.epochs; ++i) {
    table.AddRow({TableWriter::Cell(i),
                  TableWriter::Cell(2.0 * params.clip_norm, 2),
                  TableWriter::Cell(bounded[i].mean(), 4),
                  TableWriter::Cell(bounded[i].max(), 4),
                  TableWriter::Cell(params.clip_norm, 2),
                  TableWriter::Cell(unbounded[i].mean(), 4),
                  TableWriter::Cell(unbounded[i].max(), 4)});
  }
  bench::Emit(task.name + ": sensitivities over training (rho_beta=0.9, "
                          "eps=2.2, C=3)",
              table);
}

void Run() {
  BenchParams params;
  bench::PrintHeader("Figure 5: sensitivity course", params);
  RunTask(params, bench::MakeMnistTask(params));
  RunTask(params, bench::MakePurchaseTask(params));
  std::cout << "\nexpected shape: LS bounded < 2C; LS unbounded <= C and "
               "close to C while per-example gradients saturate the clip\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
