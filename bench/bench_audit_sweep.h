// Shared sweep for Figures 8-10: train models at increasing bounded-DP
// epsilon with Delta f in {LS, GS} and audit each with the three epsilon'
// estimators of Section 6.4.

#ifndef DPAUDIT_BENCH_BENCH_AUDIT_SWEEP_H_
#define DPAUDIT_BENCH_BENCH_AUDIT_SWEEP_H_

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/auditor.h"
#include "core/trace.h"

namespace dpaudit {
namespace bench {

struct AuditSweepRow {
  std::string dataset;
  double target_epsilon;
  std::string sensitivity;  // "LS" or "GS"
  AuditReport report;
  double advantage = 0.0;   // empirical Adv^DI,Gau behind the Fig. 10 row
  size_t repetitions = 0;
  size_t wins = 0;          // successful trials, for confidence intervals
};

/// Epsilon grid per task: the paper uses 0.08 (MNIST) / 0.12 (Purchase),
/// then 1.1, 2.2, 4.6 for both.
inline std::vector<double> EpsilonGridFor(const Task& task) {
  if (task.name == "MNIST") return {0.08, 1.1, 2.2, 4.6};
  return {0.12, 1.1, 2.2, 4.6};
}

/// `reps_override` (0 = default) sets the per-cell repetitions; the
/// advantage-based Figure 10 needs more than the belief/sensitivity
/// estimators because a success-rate difference carries ~1/sqrt(R) noise.
inline std::vector<AuditSweepRow> RunAuditSweep(const BenchParams& params,
                                                const Task& task,
                                                size_t reps_override = 0) {
  DPAUDIT_SPAN("audit_sweep");
  std::vector<AuditSweepRow> rows;
  for (double epsilon : EpsilonGridFor(task)) {
    for (SensitivityMode mode :
         {SensitivityMode::kLocalHat, SensitivityMode::kGlobal}) {
      DiExperimentConfig config = [&] {
        DPAUDIT_SPAN("calibration");
        return MakeScenarioConfig(params, task, epsilon, mode,
                                  NeighborMode::kBounded);
      }();
      // The sweep spans 8 (epsilon, mode) cells per task; halve the per-cell
      // repetitions by default to keep the audit figures affordable.
      config.repetitions = reps_override > 0
                               ? reps_override
                               : std::max<size_t>(8, params.reps / 2);
      // With DPAUDIT_TRACE_CACHE set, each grid cell trains once and every
      // later sweep (fig08/fig09 share cells, reruns of any figure) replays
      // the recorded trace bit-identically.
      config.trace_store = TraceStore::FromEnv();
      auto summary = RunDiExperiment(task.architecture, task.d,
                                     task.d_prime_bounded, config);
      DPAUDIT_CHECK_OK(summary.status());
      auto report = [&] {
        DPAUDIT_SPAN("audit");
        return AuditExperiment(*summary, task.delta);
      }();
      DPAUDIT_CHECK_OK(report.status());
      AuditSweepRow row{task.name, epsilon, SensitivityModeToString(mode),
                        *report};
      row.advantage = summary->EmpiricalAdvantage();
      row.repetitions = summary->trials.size();
      for (const DiTrialResult& trial : summary->trials) {
        if (trial.Success()) ++row.wins;
      }
      rows.push_back(row);
    }
  }
  return rows;
}

}  // namespace bench
}  // namespace dpaudit

#endif  // DPAUDIT_BENCH_BENCH_AUDIT_SWEEP_H_
