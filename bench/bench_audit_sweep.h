// Shared sweep for Figures 8-10: train models at increasing bounded-DP
// epsilon with Delta f in {LS, GS} and audit each with the three epsilon'
// estimators of Section 6.4.
//
// The grid runs through core/sweep_scheduler: every (task, epsilon, mode)
// cell's repetitions are flattened into ONE dynamically dispatched task set
// on the shared persistent pool, with per-cell calibration deferred onto
// the workers and the trace store resolved once per sweep. Rows come back
// in grid order and are bit-identical to the sequential per-cell path
// (selectable via DPAUDIT_SWEEP_MODE=percell) for any thread count, cold or
// warm cache.

#ifndef DPAUDIT_BENCH_BENCH_AUDIT_SWEEP_H_
#define DPAUDIT_BENCH_BENCH_AUDIT_SWEEP_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/auditor.h"
#include "core/sweep_scheduler.h"
#include "core/trace.h"
#include "dp/privacy_params.h"

namespace dpaudit {
namespace bench {

struct AuditSweepRow {
  std::string dataset;
  double target_epsilon;
  std::string sensitivity;  // "LS" or "GS"
  AuditReport report;
  double advantage = 0.0;   // empirical Adv^DI,Gau behind the Fig. 10 row
  size_t repetitions = 0;
  size_t wins = 0;          // successful trials, for confidence intervals
};

/// Epsilon grid per task: the paper uses 0.08 (MNIST) / 0.12 (Purchase),
/// then 1.1, 2.2, 4.6 for both.
inline std::vector<double> EpsilonGridFor(const Task& task) {
  if (task.name == "MNIST") return {0.08, 1.1, 2.2, 4.6};
  return {0.12, 1.1, 2.2, 4.6};
}

/// --sweep-mode=percell / DPAUDIT_SWEEP_MODE=percell selects the sequential
/// per-cell reference path (the pre-scheduler structure); anything else —
/// including unset — selects the flattened scheduler. Both produce
/// bit-identical rows.
inline SweepMode SweepModeFromEnv() {
  return CurrentRuntimeOptions().sweep_mode;
}

/// Runs the audit sweep for several tasks as ONE flattened grid (so the
/// last cells of task i overlap the first cells of task i+1) and returns
/// the rows per task, in task order. `reps_override` (0 = default) sets the
/// per-cell repetitions; the advantage-based Figure 10 needs more than the
/// belief/sensitivity estimators because a success-rate difference carries
/// ~1/sqrt(R) noise. `store` defaults to the process-wide cache — resolved
/// once per sweep, not per cell.
inline std::vector<std::vector<AuditSweepRow>> RunAuditSweeps(
    const BenchParams& params, const std::vector<const Task*>& tasks,
    size_t reps_override = 0, TraceStore* store = TraceStore::FromEnv(),
    SweepMode mode = SweepModeFromEnv()) {
  DPAUDIT_SPAN("audit_sweep");
  struct CellLabel {
    size_t task_index;
    double epsilon;
    SensitivityMode mode;
  };
  std::vector<CellLabel> labels;
  std::vector<SweepCell> cells;
  const size_t reps =
      reps_override > 0 ? reps_override : std::max<size_t>(8, params.reps / 2);
  for (size_t t = 0; t < tasks.size(); ++t) {
    const Task& task = *tasks[t];
    for (double epsilon : EpsilonGridFor(task)) {
      for (SensitivityMode sensitivity :
           {SensitivityMode::kLocalHat, SensitivityMode::kGlobal}) {
        SweepCell cell;
        cell.architecture = &task.architecture;
        cell.d = &task.d;
        cell.d_prime = &task.d_prime_bounded;
        // The sweep spans 8 (epsilon, mode) cells per task; halve the
        // per-cell repetitions by default to keep the audit figures
        // affordable.
        cell.config.repetitions = reps;
        cell.config.seed = params.seed;
        // Noise calibration through the RDP accountant is deferred so it
        // runs on a worker, overlapped with earlier cells' trials.
        cell.configure = [&params, &task, epsilon,
                          sensitivity](DiExperimentConfig* config) {
          DPAUDIT_SPAN("calibration");
          DiExperimentConfig base = MakeScenarioConfig(
              params, task, epsilon, sensitivity, NeighborMode::kBounded);
          base.repetitions = config->repetitions;
          base.trace_store = config->trace_store;
          *config = base;
          return Status::Ok();
        };
        labels.push_back({t, epsilon, sensitivity});
        cells.push_back(std::move(cell));
      }
    }
  }

  const RuntimeOptions& runtime = CurrentRuntimeOptions();
  SweepOptions options;
  options.mode = mode;
  // With DPAUDIT_TRACE_CACHE set, each grid cell trains once and every
  // later sweep (fig08/fig09 share cells; fig10 extends their recordings to
  // its larger repetition count) replays the recorded trials
  // bit-identically.
  options.trace_store = store;
  // Crash safety / failure isolation come straight from the runtime knobs
  // (see core/runtime_options.h): the checkpoint journal makes a killed
  // sweep resumable, and failed trials are retried before a cell degrades.
  options.checkpoint = runtime.checkpoint;
  options.trial_retries = runtime.trial_retries;
  options.retry_backoff_ms = runtime.retry_backoff_ms;
  options.verbose = runtime.verbose;
  SweepStats stats;
  std::vector<StatusOr<DiExperimentSummary>> summaries =
      RunSweep(cells, options, &stats);
  if (store != nullptr || !options.checkpoint.empty()) {
    DPAUDIT_LOG(INFO) << "sweep: " << stats.cells << " cells, trace full="
                      << stats.trace_full_hits
                      << " prefix=" << stats.trace_prefix_hits
                      << " miss=" << stats.trace_misses << ", trials trained="
                      << stats.trials_trained
                      << " replayed=" << stats.trials_replayed
                      << " resumed=" << stats.trials_resumed
                      << " retried=" << stats.trials_retried
                      << " failed=" << stats.trials_failed;
  }

  std::vector<std::vector<AuditSweepRow>> rows_per_task(tasks.size());
  for (size_t i = 0; i < summaries.size(); ++i) {
    DPAUDIT_CHECK_OK(summaries[i].status());
    const DiExperimentSummary& summary = *summaries[i];
    const Task& task = *tasks[labels[i].task_index];
    auto report = [&] {
      DPAUDIT_SPAN("audit");
      return AuditExperiment(summary, task.delta);
    }();
    DPAUDIT_CHECK_OK(report.status());
    AuditSweepRow row{task.name, labels[i].epsilon,
                      SensitivityModeToString(labels[i].mode), *report};
    row.advantage = summary.EmpiricalAdvantage();
    row.repetitions = summary.trials.size();
    for (const DiTrialResult& trial : summary.trials) {
      if (trial.Success()) ++row.wins;
    }
    rows_per_task[labels[i].task_index].push_back(row);
  }
  return rows_per_task;
}

/// Single-task convenience wrapper (tests, callers with one task).
inline std::vector<AuditSweepRow> RunAuditSweep(
    const BenchParams& params, const Task& task, size_t reps_override = 0,
    TraceStore* store = TraceStore::FromEnv(),
    SweepMode mode = SweepModeFromEnv()) {
  return std::move(
      RunAuditSweeps(params, {&task}, reps_override, store, mode).front());
}

}  // namespace bench
}  // namespace dpaudit

#endif  // DPAUDIT_BENCH_BENCH_AUDIT_SWEEP_H_
