// Table 1: experiment identifiability scores rho_beta, rho_alpha, the DP
// parameters (epsilon, delta), and hyperparameters k, eta, C.
//
// epsilon is derived from the chosen rho_beta via Eq. 10 and rho_alpha from
// epsilon via Theorem 2 — exactly how the paper fills the table.

#include <iostream>

#include "bench/bench_common.h"
#include "core/scores.h"

namespace dpaudit {
namespace {

struct Row {
  const char* dataset;
  double rho_beta;
  double delta;
};

void Run() {
  std::cout << "Table 1: identifiability scores and DP parameters\n"
            << "(epsilon = ln(rho_beta / (1 - rho_beta)), rho_alpha from "
               "Theorem 2; k=30, eta=0.005, C=3)\n";
  const Row rows[] = {
      {"MNIST", 0.52, 0.001},       {"MNIST", 0.75, 0.001},
      {"MNIST", 0.90, 0.001},       {"MNIST", 0.99, 0.001},
      {"Purchase-100", 0.53, 0.01}, {"Purchase-100", 0.75, 0.01},
      {"Purchase-100", 0.90, 0.01}, {"Purchase-100", 0.99, 0.01},
  };
  TableWriter table({"dataset", "rho_beta", "rho_alpha", "epsilon", "delta",
                     "k", "eta", "C"});
  for (const Row& row : rows) {
    double epsilon = *EpsilonForRhoBeta(row.rho_beta);
    double rho_alpha = *RhoAlpha(epsilon, row.delta);
    table.AddRow({row.dataset, TableWriter::Cell(row.rho_beta, 2),
                  TableWriter::Cell(rho_alpha, 3),
                  TableWriter::Cell(epsilon, 2),
                  TableWriter::Cell(row.delta, 3), TableWriter::Cell(30),
                  TableWriter::Cell(0.005, 3), TableWriter::Cell(3)});
  }
  bench::Emit("Table 1", table);

  std::cout << "\npaper reference: MNIST rho_alpha = 0.008/0.12/0.23/0.46 at "
               "eps = 0.08/1.1/2.2/4.60;\n"
               "Purchase rho_alpha = 0.015/0.14/0.28/0.54 at eps = "
               "0.12/1.1/2.2/4.60\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
