// Table 2: empirical Adv^DI,Gau and empirical delta using LS and GS with
// bounded (B) and unbounded (U) DP, for both tasks at rho_beta = 0.9.
//
// Paper reference values (250 reps): MNIST Adv = 0.24/0.23/0.18/0.27 and
// Purchase Adv = 0.25/0.23/0.1/0.24 for LS-B / LS-U / GS-B / GS-U, with
// empirical delta at or near 0. The shape to reproduce: LS rows sit at the
// rho_alpha target; the GS bounded row falls clearly below it.

#include <iostream>
#include <vector>

#include "bench/bench_audit_sweep.h"
#include "bench/bench_common.h"
#include "core/scores.h"
#include "core/sweep_scheduler.h"
#include "core/trace.h"
#include "dp/privacy_params.h"
#include "stats/summary.h"

namespace dpaudit {
namespace {

using bench::BenchParams;
using bench::Task;

struct Scenario {
  const char* sensitivity_label;
  const char* dp_label;
  SensitivityMode sensitivity;
  NeighborMode neighbors;
};

constexpr Scenario kScenarios[] = {
    {"LS", "B", SensitivityMode::kLocalHat, NeighborMode::kBounded},
    {"LS", "U", SensitivityMode::kLocalHat, NeighborMode::kUnbounded},
    {"GS", "B", SensitivityMode::kGlobal, NeighborMode::kBounded},
    {"GS", "U", SensitivityMode::kGlobal, NeighborMode::kUnbounded},
};

void Run() {
  BenchParams params;
  bench::PrintHeader("Table 2: empirical advantage and delta", params);
  const double rho_beta = 0.9;
  const double epsilon = *EpsilonForRhoBeta(rho_beta);

  Task tasks[] = {bench::MakeMnistTask(params),
                  bench::MakePurchaseTask(params)};

  // All 8 (task, scenario) experiments flatten into one dynamically
  // dispatched trial grid (core/sweep_scheduler.h); calibration runs on the
  // workers and the trace store is resolved once for the whole table.
  std::vector<SweepCell> cells;
  for (const Task& task : tasks) {
    for (const Scenario& scenario : kScenarios) {
      SweepCell cell;
      cell.architecture = &task.architecture;
      cell.d = &task.d;
      cell.d_prime = &bench::NeighborFor(task, scenario.neighbors);
      cell.config.repetitions = params.reps;
      cell.config.seed = params.seed;
      cell.configure = [&params, &task, epsilon,
                        scenario](DiExperimentConfig* config) {
        DiExperimentConfig base = bench::MakeScenarioConfig(
            params, task, epsilon, scenario.sensitivity, scenario.neighbors);
        base.repetitions = config->repetitions;
        base.trace_store = config->trace_store;
        *config = base;
        return Status::Ok();
      };
      cells.push_back(std::move(cell));
    }
  }
  SweepOptions options;
  options.mode = bench::SweepModeFromEnv();
  options.trace_store = TraceStore::FromEnv();
  auto summaries = RunSweep(cells, options);

  TableWriter table({"Delta f", "DP", "dataset", "rho_alpha target",
                     "Adv^DI,Gau", "Adv 95% lo", "Adv 95% hi",
                     "empirical delta"});
  size_t cell_index = 0;
  for (const Task& task : tasks) {
    double rho_alpha = *RhoAlpha(epsilon, task.delta);
    for (const Scenario& scenario : kScenarios) {
      const StatusOr<DiExperimentSummary>& summary = summaries[cell_index++];
      DPAUDIT_CHECK_OK(summary.status());
      size_t wins = 0;
      for (const DiTrialResult& trial : summary->trials) {
        if (trial.Success()) ++wins;
      }
      Interval ci = WilsonInterval(wins, summary->trials.size());
      table.AddRow({scenario.sensitivity_label, scenario.dp_label, task.name,
                    TableWriter::Cell(rho_alpha, 3),
                    TableWriter::Cell(summary->EmpiricalAdvantage(), 3),
                    TableWriter::Cell(2.0 * ci.lo - 1.0, 3),
                    TableWriter::Cell(2.0 * ci.hi - 1.0, 3),
                    TableWriter::Cell(summary->EmpiricalDelta(rho_beta), 4)});
    }
  }
  bench::Emit("Table 2 (rho_beta = 0.9, eps = 2.2)", table);
  std::cout << "\nexpected shape: LS rows' advantage ~ rho_alpha target; GS "
               "bounded row clearly below target; empirical delta ~ 0\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
