// Figure 1: the decision boundary of A_DI for a scalar Gaussian mechanism.
//
// f(D) = 0 and f(D') = 1; the mechanism adds N(0, sigma^2). Panel (a) is the
// two output densities g_X1 (centered at f(D)) and g_X0 (centered at f(D'));
// panel (b) is the posterior belief curves beta(D | r), beta(D' | r). The
// naive Bayes decision flips where the densities (equivalently the beliefs)
// cross, at r = 1/2.

#include <iostream>

#include "bench/bench_common.h"
#include "core/belief.h"
#include "dp/calibration.h"
#include "dp/mechanism.h"
#include "stats/normal.h"

namespace dpaudit {
namespace {

void Run() {
  const double f_d = 0.0;
  const double f_dprime = 1.0;
  const PrivacyParams params{1.0, 1e-6};
  const double sigma = *GaussianSigma(params, f_dprime - f_d);
  GaussianMechanism mechanism(sigma);

  std::cout << "Figure 1: decision boundary of A_DI\n"
            << "f(D) = 0, f(D') = 1, " << params.ToString()
            << ", sigma = " << sigma << "\n";

  TableWriter table({"r", "g_X1(r)", "g_X0(r)", "beta(D|r)", "beta(D'|r)",
                     "decision"});
  for (double r = -3.0; r <= 4.0 + 1e-9; r += 0.25) {
    double log_p_d = mechanism.LogDensityScalar(r, f_d);
    double log_p_dprime = mechanism.LogDensityScalar(r, f_dprime);
    double belief_d = SingleObservationBelief(log_p_d, log_p_dprime);
    table.AddRow({TableWriter::Cell(r, 2),
                  TableWriter::Cell(NormalPdf(r, f_d, sigma), 4),
                  TableWriter::Cell(NormalPdf(r, f_dprime, sigma), 4),
                  TableWriter::Cell(belief_d, 4),
                  TableWriter::Cell(1.0 - belief_d, 4),
                  belief_d > 0.5 ? "D" : "D'"});
  }
  bench::Emit("densities and posterior beliefs over observed r", table);

  // The crossover point: by symmetry it must sit at (f(D) + f(D'))/2.
  std::cout << "\ndecision boundary (belief = 0.5) at r = "
            << 0.5 * (f_d + f_dprime) << "\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
