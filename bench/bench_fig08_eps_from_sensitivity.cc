// Figure 8: empirical privacy loss epsilon' computed from the observed
// per-step sensitivities (sigma_i / LS_i through RDP composition), against
// the target epsilon, for Delta f = LS vs Delta f = GS (bounded DP).
//
// Expected shape: the LS curve matches the target epsilon (red circles on
// the green diagonal in the paper); the GS curve stays below it.

#include <iostream>

#include "bench/bench_audit_sweep.h"
#include "util/table_writer.h"

namespace dpaudit {
namespace {

void Run() {
  bench::BenchParams params;
  bench::PrintHeader("Figure 8: epsilon' from empirical sensitivities",
                     params);
  if (TraceStore* store = TraceStore::FromEnv()) {
    std::cerr << "trace cache: " << store->directory() << "\n";
  }
  // Both tasks feed one flattened (cell x repetition) grid: Purchase cells
  // start the moment workers drain the MNIST tail (core/sweep_scheduler.h).
  bench::Task tasks[] = {bench::MakeMnistTask(params),
                         bench::MakePurchaseTask(params)};
  auto rows_per_task =
      bench::RunAuditSweeps(params, {&tasks[0], &tasks[1]});
  for (size_t t = 0; t < 2; ++t) {
    const bench::Task& task = tasks[t];
    const std::vector<bench::AuditSweepRow>& rows = rows_per_task[t];
    TableWriter table({"dataset", "target eps", "Delta f",
                       "eps' (sensitivities)", "tight?"});
    for (const bench::AuditSweepRow& row : rows) {
      double eps_prime = row.report.epsilon_from_sensitivities;
      bool tight = eps_prime > 0.9 * row.target_epsilon;
      table.AddRow({row.dataset, TableWriter::Cell(row.target_epsilon, 2),
                    row.sensitivity, TableWriter::Cell(eps_prime, 3),
                    tight ? "yes" : "no"});
    }
    bench::Emit(task.name + ": eps' from LS_g_1..LS_g_k", table);
  }
  std::cout << "\nexpected shape: Delta f = LS rows tight (eps' = eps); "
               "Delta f = GS rows below target\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
