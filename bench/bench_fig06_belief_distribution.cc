// Figure 6: distribution of empirical posterior beliefs beta_k after
// training with rho_beta = 0.9 (epsilon = 2.2), for the four scenarios
// {LS, GS} x {bounded, unbounded}.
//
// The paper's shape: with Delta f = LS the beliefs spread up toward the
// bound rho_beta (a small fraction, bounded by delta, may exceed it); with
// the loose global sensitivity the beliefs bunch near 0.5.

#include <iostream>

#include "bench/bench_common.h"
#include "core/scores.h"
#include "dp/privacy_params.h"
#include "stats/histogram.h"
#include "stats/summary.h"

namespace dpaudit {
namespace {

using bench::BenchParams;
using bench::Task;

struct Scenario {
  const char* label;
  SensitivityMode sensitivity;
  NeighborMode neighbors;
};

constexpr Scenario kScenarios[] = {
    {"LS bounded", SensitivityMode::kLocalHat, NeighborMode::kBounded},
    {"LS unbounded", SensitivityMode::kLocalHat, NeighborMode::kUnbounded},
    {"GS bounded", SensitivityMode::kGlobal, NeighborMode::kBounded},
    {"GS unbounded", SensitivityMode::kGlobal, NeighborMode::kUnbounded},
};

void RunTask(const BenchParams& params, const Task& task) {
  const double rho_beta = 0.9;
  const double epsilon = *EpsilonForRhoBeta(rho_beta);
  TableWriter table({"scenario", "beta mean", "beta p25", "beta median",
                     "beta p75", "beta max", "frac > rho_beta"});
  for (const Scenario& scenario : kScenarios) {
    DiExperimentConfig config = bench::MakeScenarioConfig(
        params, task, epsilon, scenario.sensitivity, scenario.neighbors);
    auto summary = RunDiExperiment(
        task.architecture, task.d,
        bench::NeighborFor(task, scenario.neighbors), config);
    DPAUDIT_CHECK_OK(summary.status());
    std::vector<double> beliefs = summary->FinalBeliefsInD();
    table.AddRow({scenario.label, TableWriter::Cell(Mean(beliefs), 4),
                  TableWriter::Cell(Quantile(beliefs, 0.25), 4),
                  TableWriter::Cell(Quantile(beliefs, 0.5), 4),
                  TableWriter::Cell(Quantile(beliefs, 0.75), 4),
                  TableWriter::Cell(Quantile(beliefs, 1.0), 4),
                  TableWriter::Cell(FractionAbove(beliefs, rho_beta), 4)});

    Histogram histogram(0.0, 1.0, 20);
    histogram.AddAll(beliefs);
    std::cout << "\n" << task.name << " / " << scenario.label
              << " belief histogram:\n";
    histogram.RenderText(std::cout, 40);
  }
  bench::Emit(task.name + ": final beliefs beta_k(D) per scenario "
                          "(rho_beta=0.9)",
              table);
}

void Run() {
  BenchParams params;
  bench::PrintHeader("Figure 6: belief distributions", params);
  RunTask(params, bench::MakeMnistTask(params));
  RunTask(params, bench::MakePurchaseTask(params));
  std::cout << "\nexpected shape: LS rows approach rho_beta = 0.9 (frac "
               "above bounded by delta); GS rows cluster near 0.5\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
