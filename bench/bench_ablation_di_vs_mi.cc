// Ablation (Proposition 1): the DP adversary A_DI versus the membership-
// inference adversary A_MI on the same trained mechanism.
//
// A_DI holds both neighboring datasets and the per-step gradients; A_MI only
// holds the final model, one record, and sampling access to Dist. Over an
// epsilon sweep the empirical advantage of A_DI dominates A_MI's, and only
// A_DI approaches the rho_alpha bound — the paper's argument for auditing
// with the implemented DP adversary rather than MI attacks.

#include <iostream>

#include "bench/bench_common.h"
#include "core/scores.h"
#include "dp/privacy_params.h"
#include "mi/membership_inference.h"
#include "mi/shadow_attack.h"

namespace dpaudit {
namespace {

using bench::BenchParams;

void Run() {
  BenchParams params;
  bench::PrintHeader("Ablation: Adv^DI vs Adv^MI", params);
  bench::Task task = bench::MakePurchaseTask(params);

  // The MI adversary needs sampling access to the distribution: a fresh
  // generator with the same latent prototypes.
  SyntheticPurchaseConfig generator_config;
  generator_config.num_classes = 30;
  auto generator = std::make_shared<SyntheticPurchaseGenerator>(
      generator_config, params.seed ^ 0x70757263);
  DistSampler sampler = [generator](size_t count, Rng& rng) {
    return generator->Generate(count, rng);
  };

  TableWriter table({"epsilon", "rho_alpha bound", "Adv^DI",
                     "Adv^MI (loss)", "Adv^MI (shadow)", "DI dominates"});
  for (double epsilon : {0.5, 1.1, 2.2, 4.6, 8.0}) {
    DiExperimentConfig di = bench::MakeScenarioConfig(
        params, task, epsilon, SensitivityMode::kLocalHat,
        NeighborMode::kBounded);
    auto di_summary = RunDiExperiment(task.architecture, task.d,
                                      task.d_prime_bounded, di);
    DPAUDIT_CHECK_OK(di_summary.status());

    MiExperimentConfig mi;
    mi.dpsgd = di.dpsgd;
    mi.train_size = task.d.size();
    mi.trials = params.reps;
    mi.seed = params.seed;
    auto mi_result = RunMiExperiment(task.architecture, sampler, mi);
    DPAUDIT_CHECK_OK(mi_result.status());

    ShadowAttackConfig shadow;
    shadow.dpsgd = di.dpsgd;
    shadow.train_size = task.d.size();
    shadow.shadow_count = 4;
    shadow.trials = params.reps;
    shadow.seed = params.seed;
    auto shadow_result =
        RunShadowAttackExperiment(task.architecture, sampler, shadow);
    DPAUDIT_CHECK_OK(shadow_result.status());

    double di_adv = di_summary->EmpiricalAdvantage();
    double best_mi = std::max(mi_result->advantage,
                              shadow_result->advantage);
    table.AddRow({TableWriter::Cell(epsilon, 2),
                  TableWriter::Cell(*RhoAlpha(epsilon, task.delta), 3),
                  TableWriter::Cell(di_adv, 3),
                  TableWriter::Cell(mi_result->advantage, 3),
                  TableWriter::Cell(shadow_result->advantage, 3),
                  di_adv >= best_mi ? "yes" : "no (sampling noise)"});
  }
  bench::Emit("Purchase-100: DI vs MI advantage over epsilon", table);
  std::cout << "\nexpected shape: Adv^DI >= both MI attacks throughout; "
               "Adv^DI tracks rho_alpha, MI attacks stay near 0 under DP "
               "noise\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
