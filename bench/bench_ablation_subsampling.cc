// Ablation (Section 6.1): minibatch DPSGD with Poisson subsampling.
//
// The paper runs batch gradient descent (q = 1) because it matches the DP
// adversary's auxiliary knowledge; practical DPSGD subsamples. Two effects
// to quantify against the subsampled-Gaussian RDP accountant:
//   (a) privacy amplification — for fixed noise z, the certified epsilon
//       falls as q falls;
//   (b) the implementable mixture adversary's empirical advantage falls
//       accordingly and the posterior-belief bound keeps holding.

#include <iostream>

#include "bench/bench_common.h"
#include "core/scores.h"
#include "core/subsampling.h"

namespace dpaudit {
namespace {

using bench::BenchParams;
using bench::Task;

void Run() {
  BenchParams params;
  bench::PrintHeader("Ablation: Poisson-subsampled DPSGD", params);
  Task task = bench::MakePurchaseTask(params);
  // Unbounded neighbors: D' = D minus its dataset-sensitivity-maximizing
  // record. Locate that record's index by size bookkeeping: the unbounded
  // neighbor construction removed the ranked-first record, so rebuild the
  // ranking here.
  auto ranked = RankUnboundedCandidates(task.d, task.dissimilarity);
  DPAUDIT_CHECK_OK(ranked.status());
  size_t differing_index = ranked->front().index_in_d;

  const double delta = task.delta;
  const size_t steps = params.epochs;

  // (a) amplification: fixed noise, epsilon vs q.
  TableWriter amplification({"q", "z", "epsilon certified", "rho_beta",
                             "rho_alpha"});
  const double fixed_z = 1.5;
  for (double q : {1.0, 0.5, 0.25, 0.1, 0.05}) {
    double eps = *ComposedEpsilonForSampledNoiseMultiplier(q, fixed_z, delta,
                                                           steps);
    amplification.AddRow({TableWriter::Cell(q, 2),
                          TableWriter::Cell(fixed_z, 2),
                          TableWriter::Cell(eps, 3),
                          TableWriter::Cell(*RhoBeta(eps), 4),
                          TableWriter::Cell(*RhoAlpha(eps, delta), 4)});
  }
  bench::Emit("privacy amplification by subsampling (fixed z, k = " +
                  std::to_string(steps) + ")",
              amplification);

  // (b) the mixture adversary against weakly-noised subsampled training.
  TableWriter attack({"q", "z", "Adv (empirical)", "mean beta_k",
                      "max beta_k"});
  size_t reps = std::max<size_t>(12, params.reps);
  for (double q : {1.0, 0.5, 0.2}) {
    SampledDpSgdConfig config;
    config.steps = steps;
    config.learning_rate = params.learning_rate;
    config.clip_norm = params.clip_norm;
    config.noise_multiplier = 0.5;  // weak noise: q does the protecting
    config.sampling_rate = q;
    auto summary = RunSampledDiExperiment(task.architecture, task.d,
                                          differing_index, config, reps,
                                          params.seed);
    DPAUDIT_CHECK_OK(summary.status());
    double mean_belief = 0.0;
    for (double b : summary->final_beliefs) mean_belief += b;
    mean_belief /= static_cast<double>(summary->final_beliefs.size());
    attack.AddRow({TableWriter::Cell(q, 2),
                   TableWriter::Cell(config.noise_multiplier, 2),
                   TableWriter::Cell(summary->EmpiricalAdvantage(), 3),
                   TableWriter::Cell(mean_belief, 4),
                   TableWriter::Cell(summary->max_belief, 4)});
  }
  bench::Emit("mixture adversary vs sampling rate (Purchase-100)", attack);
  std::cout << "\nexpected shape: certified epsilon and empirical advantage "
               "both fall as q falls; beliefs drift toward 0.5\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
