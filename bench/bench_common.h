// Shared experiment setup for the figure/table reproduction binaries.
//
// Every binary prints the paper's rows/series as an aligned text table plus
// CSV. Dataset sizes and repetition counts default to bench-friendly values
// chosen so the whole bench/ directory runs in minutes on a laptop CPU;
// paper-scale settings are reachable via environment variables:
//   DPAUDIT_REPS            experiment repetitions (paper: 250 / 1000)
//   DPAUDIT_MNIST_N         |D| for the MNIST-like task (paper: 100)
//   DPAUDIT_PURCHASE_N      |D| for the Purchase-like task (paper: 1000)
//   DPAUDIT_EPOCHS          training steps k (paper: 30)
//   DPAUDIT_SEED            root seed
//
// Runtime knobs: every binary accepts the shared runtime flags
// (--threads, --lanes, --telemetry, --retries, --checkpoint, ... — see
// core/runtime_options.h or `--help`) through InitBenchRuntime, with
// precedence CLI flag > DPAUDIT_* environment variable > default. With
// telemetry enabled the binary writes a hierarchical phase profile, a JSONL
// event stream, a Prometheus exposition, and the audit ledger at exit, plus
// a sweep checkpoint journal (<dir>/<binary>.sweep.jsonl) that makes an
// interrupted sweep resumable. Exports go to stderr/files only, so stdout
// stays byte-identical with telemetry on or off.

#ifndef DPAUDIT_BENCH_BENCH_COMMON_H_
#define DPAUDIT_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/experiment.h"
#include "core/runtime_options.h"
#include "core/sweep_journal.h"
#include "data/dataset_sensitivity.h"
#include "data/dissimilarity.h"
#include "data/synthetic_mnist.h"
#include "data/synthetic_purchase.h"
#include "dp/privacy_params.h"
#include "dp/rdp_accountant.h"
#include "nn/network.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"

namespace dpaudit {
namespace bench {

/// Last path component of argv[0], for default artifact names.
inline std::string BinaryBasename(const char* argv0) {
  const std::string path = argv0 == nullptr ? "" : argv0;
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// The one-call runtime setup every bench binary does first thing in main:
/// parses the shared runtime flags out of argv (precedence: flag > DPAUDIT_*
/// env > default), handles --help, publishes and applies the options, starts
/// telemetry, and defaults the sweep checkpoint journal to
/// <telemetry_dir>/<binary>.sweep.jsonl when telemetry is on. Exits with an
/// actionable message on a malformed flag. Call before any parallel region
/// so every phase lands in the profile and the knobs take effect.
inline void InitBenchRuntime(int* argc, char** argv) {
  // Record the pre-strip command line so `dpaudit_cli sweep resume` can
  // re-execute this exact invocation from the journal manifest.
  RecordCommandLineForJournal(*argc, argv);
  StatusOr<RuntimeOptions> options = RuntimeOptions::FromEnvAndArgs(argc,
                                                                    argv);
  if (!options.ok()) {
    std::cerr << argv[0] << ": " << options.status().message() << "\n"
              << "run with --help for the runtime flag table\n";
    std::exit(2);
  }
  if (options->help) {
    PrintRuntimeOptionsHelp(argv[0], std::cout);
    std::exit(0);
  }
  if (options->checkpoint.empty() && options->telemetry_enabled) {
    options->checkpoint = options->telemetry_dir + "/" +
                          BinaryBasename(argv[0]) + ".sweep.jsonl";
  }
  InitRuntimeOptions(*options);
  DPAUDIT_CHECK_OK(ApplyRuntimeOptions(*options));
  obs::TelemetryOptions telemetry = obs::TelemetryOptionsFromEnv();
  if (options->telemetry_enabled) {
    telemetry.enabled = true;
    telemetry.directory = options->telemetry_dir;
  }
  obs::InitTelemetry(argv[0], telemetry);
}

struct BenchParams {
  size_t reps = static_cast<size_t>(EnvInt64("DPAUDIT_REPS", 24));
  size_t mnist_n = static_cast<size_t>(EnvInt64("DPAUDIT_MNIST_N", 30));
  size_t purchase_n =
      static_cast<size_t>(EnvInt64("DPAUDIT_PURCHASE_N", 40));
  size_t epochs = static_cast<size_t>(EnvInt64("DPAUDIT_EPOCHS", 30));
  uint64_t seed = static_cast<uint64_t>(EnvInt64("DPAUDIT_SEED", 42));
  double learning_rate = 0.005;  // paper Table 1
  double clip_norm = 3.0;        // paper Table 1
};

/// One of the paper's two evaluation tasks, fully materialized: training set
/// D, the dataset-sensitivity-maximizing neighbors for bounded and unbounded
/// DP, a candidate pool, a test split, and the model architecture.
struct Task {
  std::string name;
  double delta;  // paper: 1/|D| -> 0.001 (MNIST), 0.01 (Purchase)
  Dataset d;
  Dataset d_prime_bounded;    // max-DS replacement neighbor (Definition 6)
  Dataset d_prime_unbounded;  // max-DS removal neighbor
  Dataset pool;               // U \ D, for bounded substitutions
  Dataset test;
  Network architecture;
  DissimilarityFn dissimilarity;
};

/// Builds the MNIST-like task: synthetic digits, SSIM dissimilarity, the
/// paper's conv/norm/pool architecture (Section 6.2).
inline Task MakeMnistTask(const BenchParams& params) {
  DPAUDIT_SPAN("task_setup");
  Task task;
  task.name = "MNIST";
  task.delta = 0.001;  // paper keeps delta = 1/100 for |D| = 100
  SyntheticMnistConfig config;
  Rng rng(params.seed ^ 0x6d6e6973);  // task-specific stream
  Dataset all = GenerateSyntheticMnist(params.mnist_n * 3, config, rng);
  Dataset rest;
  task.d = all.SampleSplit(params.mnist_n, rng, &rest);
  task.pool = rest.SampleSplit(params.mnist_n, rng, &task.test);
  task.dissimilarity = NegativeSsim;

  auto bounded =
      RankBoundedCandidates(task.d, task.pool, task.dissimilarity);
  DPAUDIT_CHECK_OK(bounded.status());
  task.d_prime_bounded =
      MakeBoundedNeighbor(task.d, task.pool, bounded->front());
  auto unbounded = RankUnboundedCandidates(task.d, task.dissimilarity);
  DPAUDIT_CHECK_OK(unbounded.status());
  task.d_prime_unbounded =
      MakeUnboundedNeighbor(task.d, unbounded->front());

  task.architecture = BuildMnistNetwork(config.image_size,
                                        /*conv1_filters=*/4,
                                        /*conv2_filters=*/8);
  return task;
}

/// Builds the Purchase-100-like task: binary baskets, Hamming dissimilarity,
/// the paper's 600-128-100 dense architecture with class count reduced to
/// keep bench wall-clock low (env-tunable data size).
inline Task MakePurchaseTask(const BenchParams& params) {
  DPAUDIT_SPAN("task_setup");
  Task task;
  task.name = "Purchase-100";
  task.delta = 0.01;  // paper: 1/1000 rounded up to 0.01 in Table 1
  SyntheticPurchaseConfig config;
  config.num_classes = 30;  // bench default; structure is unchanged
  SyntheticPurchaseGenerator generator(config, params.seed ^ 0x70757263);
  Rng rng(params.seed ^ 0x62617367);
  Dataset all = generator.Generate(params.purchase_n * 3, rng);
  Dataset rest;
  task.d = all.SampleSplit(params.purchase_n, rng, &rest);
  task.pool = rest.SampleSplit(params.purchase_n, rng, &task.test);
  task.dissimilarity = HammingDistance;

  auto bounded =
      RankBoundedCandidates(task.d, task.pool, task.dissimilarity);
  DPAUDIT_CHECK_OK(bounded.status());
  task.d_prime_bounded =
      MakeBoundedNeighbor(task.d, task.pool, bounded->front());
  auto unbounded = RankUnboundedCandidates(task.d, task.dissimilarity);
  DPAUDIT_CHECK_OK(unbounded.status());
  task.d_prime_unbounded =
      MakeUnboundedNeighbor(task.d, unbounded->front());

  task.architecture = BuildPurchaseNetwork(config.num_features,
                                           /*hidden_units=*/48,
                                           config.num_classes);
  return task;
}

/// Experiment config for one of the paper's four sensitivity scenarios, with
/// noise calibrated through the RDP accountant so the k-step composition
/// spends exactly `epsilon` at the task's delta.
inline DiExperimentConfig MakeScenarioConfig(const BenchParams& params,
                                             const Task& task, double epsilon,
                                             SensitivityMode sensitivity,
                                             NeighborMode neighbors) {
  DiExperimentConfig config;
  config.dpsgd.epochs = params.epochs;
  config.dpsgd.learning_rate = params.learning_rate;
  config.dpsgd.clip_norm = params.clip_norm;
  StatusOr<double> z =
      NoiseMultiplierForTargetEpsilon(epsilon, task.delta, params.epochs);
  DPAUDIT_CHECK_OK(z.status());
  config.dpsgd.noise_multiplier = *z;
  config.dpsgd.sensitivity_mode = sensitivity;
  config.dpsgd.neighbor_mode = neighbors;
  config.repetitions = params.reps;
  config.seed = params.seed;
  return config;
}

inline const Dataset& NeighborFor(const Task& task, NeighborMode mode) {
  return mode == NeighborMode::kBounded ? task.d_prime_bounded
                                        : task.d_prime_unbounded;
}

/// Prints a table twice: boxed text for humans, CSV for scripts.
inline void Emit(const std::string& title, const TableWriter& table) {
  std::cout << "\n== " << title << " ==\n";
  table.RenderText(std::cout);
  std::cout << "-- csv --\n";
  table.RenderCsv(std::cout);
}

inline void PrintHeader(const std::string& what, const BenchParams& params) {
  // The simd/threads line prints unconditionally (not gated on telemetry) so
  // stdout is byte-identical with telemetry on or off.
  std::cout << "dpaudit experiment: " << what << "\n"
            << "reps=" << params.reps << " epochs=" << params.epochs
            << " |D|_mnist=" << params.mnist_n
            << " |D|_purchase=" << params.purchase_n
            << " seed=" << params.seed << "\n"
            << "simd=" << obs::ActiveSimdDispatch()
            << " threads=" << DefaultThreadCount() << "\n"
            << "(paper-scale via DPAUDIT_REPS / DPAUDIT_MNIST_N / "
               "DPAUDIT_PURCHASE_N / DPAUDIT_EPOCHS)\n";
}

}  // namespace bench
}  // namespace dpaudit

#endif  // DPAUDIT_BENCH_BENCH_COMMON_H_
