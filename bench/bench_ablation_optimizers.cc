// Ablation (Section 2.1): DPSGD with different underlying optimizers.
//
// The paper notes that the mechanism M can wrap "an ML optimizer such as
// Adam or SGD". The privacy accounting and the adversary's belief
// computation only involve the released noisy gradients, so both must be
// unchanged across optimizers — only utility may differ. This bench checks
// exactly that: advantage and eps' stay put while accuracy moves.

#include <iostream>

#include "bench/bench_common.h"
#include "core/auditor.h"
#include "core/scores.h"
#include "dp/privacy_params.h"
#include "nn/optimizer.h"
#include "stats/summary.h"

namespace dpaudit {
namespace {

using bench::BenchParams;
using bench::Task;

void Run() {
  BenchParams params;
  bench::PrintHeader("Ablation: DPSGD optimizer choice", params);
  Task task = bench::MakeMnistTask(params);
  const double epsilon = *EpsilonForRhoBeta(0.9);

  TableWriter table({"optimizer", "lr", "acc mean", "Adv^DI,Gau",
                     "eps' (sens.)", "max beta_k"});
  struct Row {
    OptimizerKind kind;
    double lr;
  };
  // Adam needs a smaller step on this scale; others use the paper's eta.
  const Row rows[] = {{OptimizerKind::kSgd, 0.005},
                      {OptimizerKind::kMomentum, 0.005},
                      {OptimizerKind::kAdam, 0.002}};
  for (const Row& row : rows) {
    DiExperimentConfig config = bench::MakeScenarioConfig(
        params, task, epsilon, SensitivityMode::kLocalHat,
        NeighborMode::kBounded);
    config.dpsgd.optimizer = row.kind;
    config.dpsgd.learning_rate = row.lr;
    auto summary = RunDiExperiment(task.architecture, task.d,
                                   task.d_prime_bounded, config, &task.test);
    DPAUDIT_CHECK_OK(summary.status());
    double eps_sens = *EpsilonFromSensitivities(*summary, task.delta);
    table.AddRow({OptimizerKindToString(row.kind),
                  TableWriter::Cell(row.lr, 3),
                  TableWriter::Cell(Mean(summary->TestAccuracies()), 4),
                  TableWriter::Cell(summary->EmpiricalAdvantage(), 3),
                  TableWriter::Cell(eps_sens, 3),
                  TableWriter::Cell(summary->MaxBeliefInD(), 3)});
  }
  bench::Emit("MNIST: optimizer ablation (LS, bounded, rho_beta = 0.9)",
              table);
  std::cout << "\nexpected shape: eps' identical across optimizers (privacy "
               "is optimizer-independent); accuracy varies\n";
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) {
  dpaudit::bench::InitBenchRuntime(&argc, argv);
  dpaudit::Run();
  dpaudit::obs::FlushTelemetry();
  return 0;
}
