#!/usr/bin/env bash
# Convenience wrapper for the repo-invariant linter: builds dpaudit_lint if
# the binary is missing, then lints the tree (src/ bench/ tools/ tests/).
# Exit status: 0 clean, 1 findings, 2 usage/build error. Extra arguments are
# forwarded, e.g.:
#   scripts/run_lint.sh --format=json
#   scripts/run_lint.sh --rule=dpaudit-stdout src
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
LINT_BIN="$BUILD_DIR/tools/dpaudit_lint"

if [ ! -x "$LINT_BIN" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build "$BUILD_DIR" --target dpaudit_lint -j "$(nproc)" > /dev/null
fi

exec "$LINT_BIN" --root . "$@"
