#!/usr/bin/env bash
# Benchmarks the experiment-suite hot path and the trace cache:
#   1. mechanism/adversary microbenchmarks at paper gradient dimensionality
#      (BM_GaussianPerturb, BM_LogLikelihoodRatio, BM_DiAdversaryOnStep);
#   2. the fig08+fig09+fig10 trio wall-clock, cold-cache (records traces)
#      and warm-cache (replays them), with --telemetry on so each binary's
#      own JSONL event stream supplies per-phase columns.
# Writes BENCH_experiment_suite.json at the repo root with the pre-change
# baseline (measured on the same machine before the trace cache and the
# vectorized kernels landed) embedded next to the fresh numbers. Build first:
#   cmake -B build -S . && cmake --build build -j
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
bench_bin="${build_dir}/bench/bench_micro"
out="${repo_root}/BENCH_experiment_suite.json"
micro_json="$(mktemp /tmp/dpaudit_micro.XXXXXX.json)"
cache_dir="$(mktemp -d /tmp/dpaudit_trace_cache.XXXXXX)"
telemetry_cold="$(mktemp -d /tmp/dpaudit_telemetry_cold.XXXXXX)"
telemetry_warm="$(mktemp -d /tmp/dpaudit_telemetry_warm.XXXXXX)"
trap 'rm -rf "${micro_json}" "${cache_dir}" "${telemetry_cold}" \
             "${telemetry_warm}"' EXIT

for bin in bench_micro bench_fig08_eps_from_sensitivity \
           bench_fig09_eps_from_belief bench_fig10_eps_from_advantage; do
  if [[ ! -x "${build_dir}/bench/${bin}" ]]; then
    echo "error: ${build_dir}/bench/${bin} not built (cmake --build build -j)" >&2
    exit 1
  fi
done

echo "== microbenchmarks (paper gradient dimensionality) =="
"${bench_bin}" \
  --benchmark_filter='BM_(GaussianPerturb|LogLikelihoodRatio|DiAdversaryOnStep)/' \
  --benchmark_out="${micro_json}" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPETITIONS:-1}"

# Each binary profiles itself (--telemetry) and the per-phase columns below
# come from its JSONL event export; profiles land on stderr -> log file.
run_trio() {
  local telemetry_dir="$1"
  local start end
  start=$(date +%s.%N)
  "${build_dir}/bench/bench_fig08_eps_from_sensitivity" \
      --telemetry="${telemetry_dir}" > /dev/null 2> "${telemetry_dir}/stderr.log"
  "${build_dir}/bench/bench_fig09_eps_from_belief" \
      --telemetry="${telemetry_dir}" > /dev/null 2>> "${telemetry_dir}/stderr.log"
  "${build_dir}/bench/bench_fig10_eps_from_advantage" \
      --telemetry="${telemetry_dir}" > /dev/null 2>> "${telemetry_dir}/stderr.log"
  end=$(date +%s.%N)
  echo "$(python3 -c "print(f'{${end} - ${start}:.2f}')")"
}

echo "== fig08+fig09+fig10 trio, cold trace cache =="
export DPAUDIT_TRACE_CACHE="${cache_dir}"
cold_seconds=$(run_trio "${telemetry_cold}")
echo "cold: ${cold_seconds}s"

echo "== fig08+fig09+fig10 trio, warm trace cache =="
warm_seconds=$(run_trio "${telemetry_warm}")
echo "warm: ${warm_seconds}s"
unset DPAUDIT_TRACE_CACHE

python3 - "${out}" "${micro_json}" "${cold_seconds}" "${warm_seconds}" \
    "${telemetry_cold}" "${telemetry_warm}" <<'EOF'
import json, os, sys
out_path, micro_path, cold_s, warm_s, tdir_cold, tdir_warm = sys.argv[1:7]
with open(micro_path) as f:
    micro = json.load(f)

TRIO = ["bench_fig08_eps_from_sensitivity",
        "bench_fig09_eps_from_belief",
        "bench_fig10_eps_from_advantage"]


def read_phases(telemetry_dir, binary):
    """Per-phase span columns from the binary's own events.jsonl."""
    path = os.path.join(telemetry_dir, binary + ".events.jsonl")
    wall_ns = 0
    phases = {}
    with open(path) as f:
        for line in f:
            event = json.loads(line)
            if event.get("type") == "run":
                wall_ns = int(event["wall_ns"])
            elif event.get("type") == "span":
                phases[event["path"]] = {
                    "count": int(event["count"]),
                    "total_ms": round(int(event["total_ns"]) / 1e6, 3),
                    "self_ms": round(int(event["self_ns"]) / 1e6, 3),
                }
    if not phases:
        raise SystemExit(f"no span events in {path}")
    top_ns = sum(p["total_ms"] for name, p in phases.items()
                 if "/" not in name) * 1e6
    return {
        "wall_seconds": round(wall_ns / 1e9, 3),
        "span_coverage": round(top_ns / wall_ns, 3) if wall_ns else 0.0,
        "phases": phases,
    }

doc = {
    "description": "Experiment-suite benchmarks: mechanism/adversary "
                   "microbenchmarks at paper gradient dimensionality and "
                   "the fig08+fig09+fig10 wall-clock with the step-trace "
                   "cache cold vs warm.",
    "context": micro.get("context", {}),
    "microbenchmarks": [
        b for b in micro.get("benchmarks", [])
        if b.get("run_type", "iteration") != "aggregate"
    ],
    "experiment_trio": {
        "binaries": TRIO,
        "cold_cache_seconds": float(cold_s),
        "warm_cache_seconds": float(warm_s),
        "per_phase_cold": {b: read_phases(tdir_cold, b) for b in TRIO},
        "per_phase_warm": {b: read_phases(tdir_warm, b) for b in TRIO},
    },
    # Measured on the same machine (1 CPU, default bench params) immediately
    # before this change: no trace cache, per-coordinate Gaussian sampling,
    # unfused scalar log-density loops.
    "pre_pr_baseline": {
        "unit": "ns",
        "experiment_trio_seconds": 72.0,
        "benchmarks": {
            "BM_GaussianPerturb/2370": 72015,
            "BM_GaussianPerturb/89828": 2556671,
            "BM_LogLikelihoodRatio/2370": 2 * 14507,
            "BM_LogLikelihoodRatio/89828": 2 * 549419,
            "BM_DiAdversaryOnStep/2370": 29123,
            "BM_DiAdversaryOnStep/89828": 1090273,
        },
        "notes": "BM_LogLikelihoodRatio baseline is two separate LogDensity "
                 "calls (the pre-change adversary's per-step cost); "
                 "per-call LogDensity measured 14507 ns (n=2370) and "
                 "549419 ns (n=89828).",
    },
}

base = doc["pre_pr_baseline"]["benchmarks"]
speedups = {}
for b in doc["microbenchmarks"]:
    name = b["name"]
    if name in base and b.get("real_time", 0) > 0:
        speedups[name] = round(base[name] / b["real_time"], 2)
doc["microbenchmark_speedups_vs_baseline"] = speedups
doc["trio_speedup_warm_vs_pre_pr"] = round(
    doc["pre_pr_baseline"]["experiment_trio_seconds"] / float(warm_s), 2)
doc["trio_speedup_cold_vs_pre_pr"] = round(
    doc["pre_pr_baseline"]["experiment_trio_seconds"] / float(cold_s), 2)

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
print(f"wrote {out_path}")
print(f"  trio: {cold_s}s cold, {warm_s}s warm "
      f"(baseline {doc['pre_pr_baseline']['experiment_trio_seconds']}s, "
      f"warm speedup {doc['trio_speedup_warm_vs_pre_pr']}x)")
for b in TRIO:
    phases = doc["experiment_trio"]["per_phase_warm"][b]
    print(f"  {b}: span coverage {phases['span_coverage'] * 100:.1f}% "
          f"of {phases['wall_seconds']}s wall (warm)")
for name, s in sorted(speedups.items()):
    print(f"  {name}: {s}x vs baseline")
EOF
