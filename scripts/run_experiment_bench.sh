#!/usr/bin/env bash
# Benchmarks the experiment-suite hot path and the trace cache:
#   1. mechanism/adversary microbenchmarks at paper gradient dimensionality
#      (BM_GaussianPerturb, BM_LogLikelihoodRatio, BM_DiAdversaryOnStep);
#   2. the fig08+fig09+fig10 trio wall-clock, cold-cache (records traces)
#      and warm-cache (replays them).
# Writes BENCH_experiment_suite.json at the repo root with the pre-change
# baseline (measured on the same machine before the trace cache and the
# vectorized kernels landed) embedded next to the fresh numbers. Build first:
#   cmake -B build -S . && cmake --build build -j
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
bench_bin="${build_dir}/bench/bench_micro"
out="${repo_root}/BENCH_experiment_suite.json"
micro_json="$(mktemp /tmp/dpaudit_micro.XXXXXX.json)"
cache_dir="$(mktemp -d /tmp/dpaudit_trace_cache.XXXXXX)"
trap 'rm -rf "${micro_json}" "${cache_dir}"' EXIT

for bin in bench_micro bench_fig08_eps_from_sensitivity \
           bench_fig09_eps_from_belief bench_fig10_eps_from_advantage; do
  if [[ ! -x "${build_dir}/bench/${bin}" ]]; then
    echo "error: ${build_dir}/bench/${bin} not built (cmake --build build -j)" >&2
    exit 1
  fi
done

echo "== microbenchmarks (paper gradient dimensionality) =="
"${bench_bin}" \
  --benchmark_filter='BM_(GaussianPerturb|LogLikelihoodRatio|DiAdversaryOnStep)/' \
  --benchmark_out="${micro_json}" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPETITIONS:-1}"

run_trio() {
  local label="$1"
  local start end
  start=$(date +%s.%N)
  "${build_dir}/bench/bench_fig08_eps_from_sensitivity" > /dev/null
  "${build_dir}/bench/bench_fig09_eps_from_belief" > /dev/null
  "${build_dir}/bench/bench_fig10_eps_from_advantage" > /dev/null
  end=$(date +%s.%N)
  echo "$(python3 -c "print(f'{${end} - ${start}:.2f}')")"
}

echo "== fig08+fig09+fig10 trio, cold trace cache =="
export DPAUDIT_TRACE_CACHE="${cache_dir}"
cold_seconds=$(run_trio cold)
echo "cold: ${cold_seconds}s"

echo "== fig08+fig09+fig10 trio, warm trace cache =="
warm_seconds=$(run_trio warm)
echo "warm: ${warm_seconds}s"
unset DPAUDIT_TRACE_CACHE

python3 - "${out}" "${micro_json}" "${cold_seconds}" "${warm_seconds}" <<'EOF'
import json, sys
out_path, micro_path, cold_s, warm_s = sys.argv[1:5]
with open(micro_path) as f:
    micro = json.load(f)

doc = {
    "description": "Experiment-suite benchmarks: mechanism/adversary "
                   "microbenchmarks at paper gradient dimensionality and "
                   "the fig08+fig09+fig10 wall-clock with the step-trace "
                   "cache cold vs warm.",
    "context": micro.get("context", {}),
    "microbenchmarks": [
        b for b in micro.get("benchmarks", [])
        if b.get("run_type", "iteration") != "aggregate"
    ],
    "experiment_trio": {
        "binaries": ["bench_fig08_eps_from_sensitivity",
                     "bench_fig09_eps_from_belief",
                     "bench_fig10_eps_from_advantage"],
        "cold_cache_seconds": float(cold_s),
        "warm_cache_seconds": float(warm_s),
    },
    # Measured on the same machine (1 CPU, default bench params) immediately
    # before this change: no trace cache, per-coordinate Gaussian sampling,
    # unfused scalar log-density loops.
    "pre_pr_baseline": {
        "unit": "ns",
        "experiment_trio_seconds": 72.0,
        "benchmarks": {
            "BM_GaussianPerturb/2370": 72015,
            "BM_GaussianPerturb/89828": 2556671,
            "BM_LogLikelihoodRatio/2370": 2 * 14507,
            "BM_LogLikelihoodRatio/89828": 2 * 549419,
            "BM_DiAdversaryOnStep/2370": 29123,
            "BM_DiAdversaryOnStep/89828": 1090273,
        },
        "notes": "BM_LogLikelihoodRatio baseline is two separate LogDensity "
                 "calls (the pre-change adversary's per-step cost); "
                 "per-call LogDensity measured 14507 ns (n=2370) and "
                 "549419 ns (n=89828).",
    },
}

base = doc["pre_pr_baseline"]["benchmarks"]
speedups = {}
for b in doc["microbenchmarks"]:
    name = b["name"]
    if name in base and b.get("real_time", 0) > 0:
        speedups[name] = round(base[name] / b["real_time"], 2)
doc["microbenchmark_speedups_vs_baseline"] = speedups
doc["trio_speedup_warm_vs_pre_pr"] = round(
    doc["pre_pr_baseline"]["experiment_trio_seconds"] / float(warm_s), 2)
doc["trio_speedup_cold_vs_pre_pr"] = round(
    doc["pre_pr_baseline"]["experiment_trio_seconds"] / float(cold_s), 2)

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
print(f"wrote {out_path}")
print(f"  trio: {cold_s}s cold, {warm_s}s warm "
      f"(baseline {doc['pre_pr_baseline']['experiment_trio_seconds']}s, "
      f"warm speedup {doc['trio_speedup_warm_vs_pre_pr']}x)")
for name, s in sorted(speedups.items()):
    print(f"  {name}: {s}x vs baseline")
EOF
