#!/usr/bin/env bash
# Benchmarks the experiment-suite hot path and the trace cache:
#   1. mechanism/adversary microbenchmarks at paper gradient dimensionality
#      (BM_GaussianPerturb, BM_LogLikelihoodRatio, BM_DiAdversaryOnStep);
#   2. the fig08+fig09+fig10 trio wall-clock, cold-cache (records traces)
#      and warm-cache (replays them), with --telemetry on so each binary's
#      own JSONL event stream supplies per-phase columns;
#   3. the flattened sweep scheduler vs the sequential per-cell reference
#      path (DPAUDIT_SWEEP_MODE=percell) at DPAUDIT_THREADS 1 and 4, plus
#      the pool-churn microbenchmarks (fresh pool per region vs the shared
#      pool), with cells/sec and worker occupancy pulled from telemetry;
#   4. the batched-lane gradient engine (DPAUDIT_BATCH_LANES=8) vs the
#      scalar path (DPAUDIT_BATCH_LANES=0): the MNIST b64 clipped-gradient
#      microbenchmark plus fig08 wall-clock, cold and warm trace cache,
#      with per-phase telemetry columns.
# Writes BENCH_experiment_suite.json, BENCH_sweep_scheduler.json, and
# BENCH_batched_lanes.json at the repo root with the pre-change baselines
# (measured on the same machine before each change landed) embedded next to
# the fresh numbers. Build first:
#   cmake -B build -S . && cmake --build build -j
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
bench_bin="${build_dir}/bench/bench_micro"
out="${repo_root}/BENCH_experiment_suite.json"
micro_json="$(mktemp /tmp/dpaudit_micro.XXXXXX.json)"
cache_dir="$(mktemp -d /tmp/dpaudit_trace_cache.XXXXXX)"
telemetry_cold="$(mktemp -d /tmp/dpaudit_telemetry_cold.XXXXXX)"
telemetry_warm="$(mktemp -d /tmp/dpaudit_telemetry_warm.XXXXXX)"
trap 'rm -rf "${micro_json}" "${cache_dir}" "${telemetry_cold}" \
             "${telemetry_warm}"' EXIT

for bin in bench_micro bench_fig08_eps_from_sensitivity \
           bench_fig09_eps_from_belief bench_fig10_eps_from_advantage; do
  if [[ ! -x "${build_dir}/bench/${bin}" ]]; then
    echo "error: ${build_dir}/bench/${bin} not built (cmake --build build -j)" >&2
    exit 1
  fi
done

# Provenance folded into every BENCH_*.json below: the commit the numbers
# were measured at, the ledger/telemetry schema version, and the build_info
# gauge (simd dispatch, thread default) from the CLI's metrics exposition.
export DPAUDIT_PROV_COMMIT="$(git -C "${repo_root}" rev-parse --short HEAD \
                              2>/dev/null || echo unknown)"
export DPAUDIT_PROV_SCHEMA=1
export DPAUDIT_PROV_BUILD_INFO="$("${build_dir}/tools/dpaudit_cli" metrics \
    2>/dev/null | grep '^dpaudit_build_info' || true)"

echo "== microbenchmarks (paper gradient dimensionality) =="
"${bench_bin}" \
  --benchmark_filter='BM_(GaussianPerturb|LogLikelihoodRatio|DiAdversaryOnStep)/' \
  --benchmark_out="${micro_json}" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPETITIONS:-1}"

# Each binary profiles itself (--telemetry) and the per-phase columns below
# come from its JSONL event export; profiles land on stderr -> log file.
run_trio() {
  local telemetry_dir="$1"
  local start end
  start=$(date +%s.%N)
  "${build_dir}/bench/bench_fig08_eps_from_sensitivity" \
      --telemetry="${telemetry_dir}" > /dev/null 2> "${telemetry_dir}/stderr.log"
  "${build_dir}/bench/bench_fig09_eps_from_belief" \
      --telemetry="${telemetry_dir}" > /dev/null 2>> "${telemetry_dir}/stderr.log"
  "${build_dir}/bench/bench_fig10_eps_from_advantage" \
      --telemetry="${telemetry_dir}" > /dev/null 2>> "${telemetry_dir}/stderr.log"
  end=$(date +%s.%N)
  echo "$(python3 -c "print(f'{${end} - ${start}:.2f}')")"
}

echo "== fig08+fig09+fig10 trio, cold trace cache =="
export DPAUDIT_TRACE_CACHE="${cache_dir}"
cold_seconds=$(run_trio "${telemetry_cold}")
echo "cold: ${cold_seconds}s"

echo "== fig08+fig09+fig10 trio, warm trace cache =="
warm_seconds=$(run_trio "${telemetry_warm}")
echo "warm: ${warm_seconds}s"
unset DPAUDIT_TRACE_CACHE

python3 - "${out}" "${micro_json}" "${cold_seconds}" "${warm_seconds}" \
    "${telemetry_cold}" "${telemetry_warm}" <<'EOF'
import json, os, sys
out_path, micro_path, cold_s, warm_s, tdir_cold, tdir_warm = sys.argv[1:7]
with open(micro_path) as f:
    micro = json.load(f)

TRIO = ["bench_fig08_eps_from_sensitivity",
        "bench_fig09_eps_from_belief",
        "bench_fig10_eps_from_advantage"]


def read_phases(telemetry_dir, binary):
    """Per-phase span columns from the binary's own events.jsonl."""
    path = os.path.join(telemetry_dir, binary + ".events.jsonl")
    wall_ns = 0
    phases = {}
    with open(path) as f:
        for line in f:
            event = json.loads(line)
            if event.get("type") == "run":
                wall_ns = int(event["wall_ns"])
            elif event.get("type") == "span":
                phases[event["path"]] = {
                    "count": int(event["count"]),
                    "total_ms": round(int(event["total_ns"]) / 1e6, 3),
                    "self_ms": round(int(event["self_ns"]) / 1e6, 3),
                }
    if not phases:
        raise SystemExit(f"no span events in {path}")
    top_ns = sum(p["total_ms"] for name, p in phases.items()
                 if "/" not in name) * 1e6
    return {
        "wall_seconds": round(wall_ns / 1e9, 3),
        "span_coverage": round(top_ns / wall_ns, 3) if wall_ns else 0.0,
        "phases": phases,
    }

doc = {
    "description": "Experiment-suite benchmarks: mechanism/adversary "
                   "microbenchmarks at paper gradient dimensionality and "
                   "the fig08+fig09+fig10 wall-clock with the step-trace "
                   "cache cold vs warm.",
    "context": micro.get("context", {}),
    "microbenchmarks": [
        b for b in micro.get("benchmarks", [])
        if b.get("run_type", "iteration") != "aggregate"
    ],
    "experiment_trio": {
        "binaries": TRIO,
        "cold_cache_seconds": float(cold_s),
        "warm_cache_seconds": float(warm_s),
        "per_phase_cold": {b: read_phases(tdir_cold, b) for b in TRIO},
        "per_phase_warm": {b: read_phases(tdir_warm, b) for b in TRIO},
    },
    # Measured on the same machine (1 CPU, default bench params) immediately
    # before this change: no trace cache, per-coordinate Gaussian sampling,
    # unfused scalar log-density loops.
    "pre_pr_baseline": {
        "unit": "ns",
        "experiment_trio_seconds": 72.0,
        "benchmarks": {
            "BM_GaussianPerturb/2370": 72015,
            "BM_GaussianPerturb/89828": 2556671,
            "BM_LogLikelihoodRatio/2370": 2 * 14507,
            "BM_LogLikelihoodRatio/89828": 2 * 549419,
            "BM_DiAdversaryOnStep/2370": 29123,
            "BM_DiAdversaryOnStep/89828": 1090273,
        },
        "notes": "BM_LogLikelihoodRatio baseline is two separate LogDensity "
                 "calls (the pre-change adversary's per-step cost); "
                 "per-call LogDensity measured 14507 ns (n=2370) and "
                 "549419 ns (n=89828).",
    },
}

base = doc["pre_pr_baseline"]["benchmarks"]
speedups = {}
for b in doc["microbenchmarks"]:
    name = b["name"]
    if name in base and b.get("real_time", 0) > 0:
        speedups[name] = round(base[name] / b["real_time"], 2)
doc["microbenchmark_speedups_vs_baseline"] = speedups
doc["trio_speedup_warm_vs_pre_pr"] = round(
    doc["pre_pr_baseline"]["experiment_trio_seconds"] / float(warm_s), 2)
doc["trio_speedup_cold_vs_pre_pr"] = round(
    doc["pre_pr_baseline"]["experiment_trio_seconds"] / float(cold_s), 2)

doc["provenance"] = {
    "schema_version": int(os.environ.get("DPAUDIT_PROV_SCHEMA", "1")),
    "git_commit": os.environ.get("DPAUDIT_PROV_COMMIT", "unknown"),
    "build_info": os.environ.get("DPAUDIT_PROV_BUILD_INFO", ""),
}

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
print(f"wrote {out_path}")
print(f"  trio: {cold_s}s cold, {warm_s}s warm "
      f"(baseline {doc['pre_pr_baseline']['experiment_trio_seconds']}s, "
      f"warm speedup {doc['trio_speedup_warm_vs_pre_pr']}x)")
for b in TRIO:
    phases = doc["experiment_trio"]["per_phase_warm"][b]
    print(f"  {b}: span coverage {phases['span_coverage'] * 100:.1f}% "
          f"of {phases['wall_seconds']}s wall (warm)")
for name, s in sorted(speedups.items()):
    print(f"  {name}: {s}x vs baseline")
EOF

# ---------------------------------------------------------------------------
# Sweep scheduler: flattened (cell x repetition) grid vs the sequential
# per-cell reference path, each cold and warm, at 1 and 4 threads.

sweep_out="${repo_root}/BENCH_sweep_scheduler.json"
pool_json="$(mktemp /tmp/dpaudit_pool_micro.XXXXXX.json)"
sweep_tmp="$(mktemp -d /tmp/dpaudit_sweep_bench.XXXXXX)"
trap 'rm -rf "${micro_json}" "${cache_dir}" "${telemetry_cold}" \
             "${telemetry_warm}" "${pool_json}" "${sweep_tmp}"' EXIT

echo "== pool churn microbenchmarks (fresh pool per region vs shared) =="
"${bench_bin}" \
  --benchmark_filter='BM_ParallelFor(FreshPool|SharedPool)/' \
  --benchmark_out="${pool_json}" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPETITIONS:-1}"

# run_sweep_trio MODE THREADS PHASE: one trio pass; telemetry JSONL lands in
# ${sweep_tmp}/MODE_THREADS_PHASE/, wall seconds on stdout.
run_sweep_trio() {
  local mode="$1" threads="$2" phase="$3"
  local tdir="${sweep_tmp}/${mode}_${threads}t_${phase}"
  mkdir -p "${tdir}"
  DPAUDIT_SWEEP_MODE="${mode}" DPAUDIT_THREADS="${threads}" \
      run_trio "${tdir}"
}

declare -A sweep_seconds
for mode in flattened percell; do
  for threads in 1 4; do
    export DPAUDIT_TRACE_CACHE="${sweep_tmp}/cache_${mode}_${threads}t"
    mkdir -p "${DPAUDIT_TRACE_CACHE}"
    echo "== trio, mode=${mode} threads=${threads}, cold cache =="
    sweep_seconds["${mode}_${threads}_cold"]=$(run_sweep_trio "${mode}" "${threads}" cold)
    echo "cold: ${sweep_seconds[${mode}_${threads}_cold]}s"
    echo "== trio, mode=${mode} threads=${threads}, warm cache =="
    sweep_seconds["${mode}_${threads}_warm"]=$(run_sweep_trio "${mode}" "${threads}" warm)
    echo "warm: ${sweep_seconds[${mode}_${threads}_warm]}s"
    unset DPAUDIT_TRACE_CACHE
  done
done

python3 - "${sweep_out}" "${pool_json}" "${sweep_tmp}" \
    "${sweep_seconds[flattened_1_cold]}" "${sweep_seconds[flattened_1_warm]}" \
    "${sweep_seconds[flattened_4_cold]}" "${sweep_seconds[flattened_4_warm]}" \
    "${sweep_seconds[percell_1_cold]}" "${sweep_seconds[percell_1_warm]}" \
    "${sweep_seconds[percell_4_cold]}" "${sweep_seconds[percell_4_warm]}" <<'EOF'
import json, os, sys
(out_path, pool_path, tmp_dir,
 f1c, f1w, f4c, f4w, p1c, p1w, p4c, p4w) = sys.argv[1:12]
with open(pool_path) as f:
    pool_micro = json.load(f)

TRIO = ["bench_fig08_eps_from_sensitivity",
        "bench_fig09_eps_from_belief",
        "bench_fig10_eps_from_advantage"]


def read_run(mode, threads, phase):
    """Sweep counters + worker occupancy from the trio's events.jsonl."""
    tdir = os.path.join(tmp_dir, f"{mode}_{threads}t_{phase}")
    counters = {}
    execute_us = 0.0
    wall_ns = 0
    for binary in TRIO:
        with open(os.path.join(tdir, binary + ".events.jsonl")) as f:
            for line in f:
                event = json.loads(line)
                if event.get("type") == "run":
                    wall_ns += int(event["wall_ns"])
                elif (event.get("type") == "counter" and
                      event["name"].startswith("dpaudit_sweep_")):
                    counters[event["name"]] = (
                        counters.get(event["name"], 0) + int(event["value"]))
                elif (event.get("type") == "distribution" and
                      event["name"] == "dpaudit_pool_execute_us"):
                    execute_us += event["count"] * event["mean"]
    wall_s = wall_ns / 1e9
    cells = counters.get("dpaudit_sweep_cells_total", 0)
    # Occupancy: summed task execute time over the workers' capacity. The
    # calling thread drains chunks too, so > 1/threads means real overlap.
    occupancy = (execute_us / 1e6) / (wall_s * int(threads)) if wall_s else 0.0
    return {
        "wall_seconds": round(wall_s, 3),
        "cells": cells,
        "cells_per_second": round(cells / wall_s, 3) if wall_s else 0.0,
        "worker_occupancy": round(occupancy, 3),
        "sweep_counters": counters,
    }

runs = {}
seconds = {("flattened", "1", "cold"): f1c, ("flattened", "1", "warm"): f1w,
           ("flattened", "4", "cold"): f4c, ("flattened", "4", "warm"): f4w,
           ("percell", "1", "cold"): p1c, ("percell", "1", "warm"): p1w,
           ("percell", "4", "cold"): p4c, ("percell", "4", "warm"): p4w}
for (mode, threads, phase), measured in seconds.items():
    entry = read_run(mode, threads, phase)
    entry["measured_seconds"] = float(measured)
    runs[f"{mode}_{threads}t_{phase}"] = entry

doc = {
    "description": "Flattened (cell x repetition) sweep scheduler vs the "
                   "sequential per-cell reference path "
                   "(DPAUDIT_SWEEP_MODE=percell) over the fig08+fig09+fig10 "
                   "trio, cold and warm trace cache, 1 and 4 threads; plus "
                   "the pool-churn microbenchmarks. cells/sec and worker "
                   "occupancy come from each binary's telemetry JSONL.",
    "pool_microbenchmarks": [
        b for b in pool_micro.get("benchmarks", [])
        if b.get("run_type", "iteration") != "aggregate"
    ],
    "context": pool_micro.get("context", {}),
    "trio_runs": runs,
    # Measured on the same machine (default bench params) immediately before
    # this change: per-cell ParallelFor with a pool constructed per region,
    # sequential cells, and repetition counts baked into the trace
    # fingerprint (so fig10's 24 reps could not extend fig08/09's 12-rep
    # recordings).
    "pre_pr_baseline": {
        "trio_cold_seconds_1t": 51.92,
        "trio_warm_seconds_1t": 0.15,
        "trio_cold_seconds_4t": 51.63,
        "trio_warm_seconds_4t": 0.13,
        "per_binary_cold_seconds_1t": {
            "bench_fig08_eps_from_sensitivity": 17.45,
            "bench_fig09_eps_from_belief": 0.04,
            "bench_fig10_eps_from_advantage": 34.87,
        },
        "notes": "4-thread baseline shows no speedup because this "
                 "machine exposes a single core; the per-cell path also "
                 "could not overlap cells regardless of width.",
    },
}

base = doc["pre_pr_baseline"]
doc["speedups"] = {
    "flattened_cold_1t_vs_pre_pr": round(
        base["trio_cold_seconds_1t"] / runs["flattened_1t_cold"]["measured_seconds"], 2),
    "flattened_cold_4t_vs_pre_pr": round(
        base["trio_cold_seconds_4t"] / runs["flattened_4t_cold"]["measured_seconds"], 2),
    "flattened_vs_percell_cold_4t": round(
        runs["percell_4t_cold"]["measured_seconds"] /
        runs["flattened_4t_cold"]["measured_seconds"], 2),
}
pool = {b["name"]: b["real_time"] for b in doc["pool_microbenchmarks"]}
for n in (16, 256):
    fresh, shared = pool.get(f"BM_ParallelForFreshPool/{n}"), pool.get(
        f"BM_ParallelForSharedPool/{n}")
    if fresh and shared:
        doc["speedups"][f"shared_pool_vs_fresh_pool/{n}"] = round(
            fresh / shared, 2)

doc["provenance"] = {
    "schema_version": int(os.environ.get("DPAUDIT_PROV_SCHEMA", "1")),
    "git_commit": os.environ.get("DPAUDIT_PROV_COMMIT", "unknown"),
    "build_info": os.environ.get("DPAUDIT_PROV_BUILD_INFO", ""),
}

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
print(f"wrote {out_path}")
for key in ("flattened_1t_cold", "flattened_1t_warm",
            "flattened_4t_cold", "flattened_4t_warm",
            "percell_4t_cold", "percell_4t_warm"):
    r = runs[key]
    print(f"  {key}: {r['measured_seconds']}s, {r['cells']} cells, "
          f"{r['cells_per_second']} cells/s, "
          f"occupancy {r['worker_occupancy']}")
for name, s in sorted(doc["speedups"].items()):
    print(f"  {name}: {s}x")
EOF

# ---------------------------------------------------------------------------
# Batched multi-example lanes: the gradient engine walks lane-packs of eight
# examples through one fused forward/backward pass (DPAUDIT_BATCH_LANES=8)
# vs the one-example-at-a-time scalar path (DPAUDIT_BATCH_LANES=0). Both
# paths are bit-identical by construction; this section measures them.

lanes_out="${repo_root}/BENCH_batched_lanes.json"
lanes_json="$(mktemp /tmp/dpaudit_lanes_micro.XXXXXX.json)"
lanes_tmp="$(mktemp -d /tmp/dpaudit_lanes_bench.XXXXXX)"
trap 'rm -rf "${micro_json}" "${cache_dir}" "${telemetry_cold}" \
             "${telemetry_warm}" "${pool_json}" "${sweep_tmp}" \
             "${lanes_json}" "${lanes_tmp}"' EXIT

echo "== clipped-gradient-sum microbenchmark, scalar vs 8-lane packs =="
"${bench_bin}" \
  --benchmark_filter='BM_ClippedGradientSumMnistLanes/' \
  --benchmark_out="${lanes_json}" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPETITIONS:-3}"

# run_fig08 LANES PHASE: one fig08 pass under DPAUDIT_BATCH_LANES=LANES;
# telemetry JSONL lands in ${lanes_tmp}/lanes<LANES>_<PHASE>/, wall seconds
# on stdout.
run_fig08() {
  local lanes="$1" phase="$2"
  local tdir="${lanes_tmp}/lanes${lanes}_${phase}"
  mkdir -p "${tdir}"
  local start end
  start=$(date +%s.%N)
  DPAUDIT_BATCH_LANES="${lanes}" \
      "${build_dir}/bench/bench_fig08_eps_from_sensitivity" \
      --telemetry="${tdir}" > /dev/null 2> "${tdir}/stderr.log"
  end=$(date +%s.%N)
  python3 -c "print(f'{${end} - ${start}:.2f}')"
}

declare -A lanes_seconds
for lanes in 0 8; do
  export DPAUDIT_TRACE_CACHE="${lanes_tmp}/cache_lanes${lanes}"
  mkdir -p "${DPAUDIT_TRACE_CACHE}"
  echo "== fig08, DPAUDIT_BATCH_LANES=${lanes}, cold cache =="
  lanes_seconds["${lanes}_cold"]=$(run_fig08 "${lanes}" cold)
  echo "cold: ${lanes_seconds[${lanes}_cold]}s"
  echo "== fig08, DPAUDIT_BATCH_LANES=${lanes}, warm cache =="
  lanes_seconds["${lanes}_warm"]=$(run_fig08 "${lanes}" warm)
  echo "warm: ${lanes_seconds[${lanes}_warm]}s"
  unset DPAUDIT_TRACE_CACHE
done

python3 - "${lanes_out}" "${lanes_json}" "${lanes_tmp}" \
    "${lanes_seconds[0_cold]}" "${lanes_seconds[0_warm]}" \
    "${lanes_seconds[8_cold]}" "${lanes_seconds[8_warm]}" <<'EOF'
import json, os, statistics, sys
out_path, micro_path, tmp_dir, c0, w0, c8, w8 = sys.argv[1:8]
with open(micro_path) as f:
    micro = json.load(f)

FIG08 = "bench_fig08_eps_from_sensitivity"


def read_phases(tdir, binary):
    """Per-phase span columns from the binary's own events.jsonl."""
    path = os.path.join(tdir, binary + ".events.jsonl")
    wall_ns = 0
    phases = {}
    with open(path) as f:
        for line in f:
            event = json.loads(line)
            if event.get("type") == "run":
                wall_ns = int(event["wall_ns"])
            elif event.get("type") == "span":
                phases[event["path"]] = {
                    "count": int(event["count"]),
                    "total_ms": round(int(event["total_ns"]) / 1e6, 3),
                    "self_ms": round(int(event["self_ns"]) / 1e6, 3),
                }
    if not phases:
        raise SystemExit(f"no span events in {path}")
    top_ns = sum(p["total_ms"] for name, p in phases.items()
                 if "/" not in name) * 1e6
    return {
        "wall_seconds": round(wall_ns / 1e9, 3),
        "span_coverage": round(top_ns / wall_ns, 3) if wall_ns else 0.0,
        "phases": phases,
    }


def median_ms(name):
    # The lanes benchmarks declare Unit(kMillisecond), so real_time is
    # already in milliseconds.
    times = [b["real_time"] for b in micro.get("benchmarks", [])
             if b["name"] == name
             and b.get("run_type", "iteration") != "aggregate"]
    if not times:
        raise SystemExit(f"benchmark {name} missing from {micro_path}")
    return statistics.median(times)

scalar_ms = median_ms("BM_ClippedGradientSumMnistLanes/64/1/0")
lanes8_ms = median_ms("BM_ClippedGradientSumMnistLanes/64/1/8")

runs = {}
for lanes, phase, measured in (("0", "cold", c0), ("0", "warm", w0),
                               ("8", "cold", c8), ("8", "warm", w8)):
    runs[f"lanes{lanes}_{phase}"] = {
        "measured_seconds": float(measured),
        "per_phase": read_phases(
            os.path.join(tmp_dir, f"lanes{lanes}_{phase}"), FIG08),
    }

doc = {
    "description": "Batched multi-example lane packs through the "
                   "per-example gradient engine (DPAUDIT_BATCH_LANES=8) vs "
                   "the scalar path (DPAUDIT_BATCH_LANES=0): MNIST b64 "
                   "single-thread clipped-gradient-sum microbenchmark and "
                   "fig08 wall-clock, cold and warm trace cache, with "
                   "per-phase telemetry columns. Both paths produce "
                   "bit-identical per-example gradients; warm runs replay "
                   "the step-trace cache and are lane-independent.",
    "context": micro.get("context", {}),
    "microbenchmarks": [
        b for b in micro.get("benchmarks", [])
        if b.get("run_type", "iteration") != "aggregate"
    ],
    "clipped_gradient_sum_mnist_b64_1t": {
        "scalar_ms": round(scalar_ms, 3),
        "lanes8_ms": round(lanes8_ms, 3),
        "speedup_lanes8_vs_scalar": round(scalar_ms / lanes8_ms, 2),
    },
    "fig08_runs": runs,
    "fig08_speedups": {
        "cold_lanes8_vs_scalar": round(float(c0) / float(c8), 2),
        "warm_lanes8_vs_scalar": round(float(w0) / float(w8), 2),
    },
}

doc["provenance"] = {
    "schema_version": int(os.environ.get("DPAUDIT_PROV_SCHEMA", "1")),
    "git_commit": os.environ.get("DPAUDIT_PROV_COMMIT", "unknown"),
    "build_info": os.environ.get("DPAUDIT_PROV_BUILD_INFO", ""),
}

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
print(f"wrote {out_path}")
cg = doc["clipped_gradient_sum_mnist_b64_1t"]
print(f"  ClippedGradientSum MNIST b64 1t: {cg['scalar_ms']}ms scalar, "
      f"{cg['lanes8_ms']}ms 8-lane "
      f"({cg['speedup_lanes8_vs_scalar']}x)")
for key in ("lanes0_cold", "lanes8_cold", "lanes0_warm", "lanes8_warm"):
    r = runs[key]
    print(f"  fig08 {key}: {r['measured_seconds']}s "
          f"(span coverage {r['per_phase']['span_coverage'] * 100:.1f}%)")
print(f"  fig08 cold speedup: "
      f"{doc['fig08_speedups']['cold_lanes8_vs_scalar']}x")
EOF
