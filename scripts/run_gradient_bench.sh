#!/usr/bin/env bash
# Runs the gradient-engine microbenchmarks and writes their google-benchmark
# JSON to BENCH_gradient_engine.json at the repo root. Build first:
#   cmake -B build -S . && cmake --build build -j --target bench_micro
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
bench_bin="${repo_root}/build/bench/bench_micro"
out="${repo_root}/BENCH_gradient_engine.json"

if [[ ! -x "${bench_bin}" ]]; then
  echo "error: ${bench_bin} not built (cmake --build build --target bench_micro)" >&2
  exit 1
fi

"${bench_bin}" \
  --benchmark_filter='BM_ClippedGradientSum(Mnist|Purchase)/' \
  --benchmark_out="${out}" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPETITIONS:-1}" \
  "$@"

# Provenance: the commit the numbers were measured at, the telemetry schema
# version, and the build_info gauge from the CLI's metrics exposition (empty
# when only bench_micro was built).
export DPAUDIT_PROV_COMMIT="$(git -C "${repo_root}" rev-parse --short HEAD \
                              2>/dev/null || echo unknown)"
export DPAUDIT_PROV_SCHEMA=1
export DPAUDIT_PROV_BUILD_INFO="$("${repo_root}/build/tools/dpaudit_cli" \
    metrics 2>/dev/null | grep '^dpaudit_build_info' || true)"

# Fold the pre-engine baseline (naive per-example loop, seed build at the
# same single-thread setting) into the JSON so before/after live in one file.
python3 - "${out}" <<'EOF'
import json, os, sys
path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
doc["pre_pr_baseline"] = {
    "description": "Network::ClippedGradientSum naive per-example loop, "
                   "seed build (-O2, no gradient engine), single thread, "
                   "same machine",
    "unit": "ms",
    "benchmarks": {
        "BM_ClippedGradientSumMnist/16": 2.506,
        "BM_ClippedGradientSumMnist/64": 10.223,
        "BM_ClippedGradientSumMnist/256": 40.111,
        "BM_ClippedGradientSumPurchase/16": 5.314,
        "BM_ClippedGradientSumPurchase/64": 20.612,
        "BM_ClippedGradientSumPurchase/256": 83.069,
    },
}
mnist64 = next((b for b in doc.get("benchmarks", [])
                if b["name"].startswith("BM_ClippedGradientSumMnist/64/1")
                and b.get("run_type", "iteration") != "aggregate"), None)
if mnist64 is not None:
    doc["speedup_mnist_batch64_single_thread"] = round(
        doc["pre_pr_baseline"]["benchmarks"]["BM_ClippedGradientSumMnist/64"]
        / mnist64["real_time"], 2)
doc["provenance"] = {
    "schema_version": int(os.environ.get("DPAUDIT_PROV_SCHEMA", "1")),
    "git_commit": os.environ.get("DPAUDIT_PROV_COMMIT", "unknown"),
    "build_info": os.environ.get("DPAUDIT_PROV_BUILD_INFO", ""),
}
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
EOF

echo "wrote ${out}"
