# Empty compiler generated dependencies file for dpaudit_cli.
# This may be replaced when dependencies are built.
