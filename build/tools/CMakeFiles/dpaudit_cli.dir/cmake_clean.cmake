file(REMOVE_RECURSE
  "CMakeFiles/dpaudit_cli.dir/dpaudit_cli.cc.o"
  "CMakeFiles/dpaudit_cli.dir/dpaudit_cli.cc.o.d"
  "dpaudit_cli"
  "dpaudit_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaudit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
