# Empty compiler generated dependencies file for choose_epsilon.
# This may be replaced when dependencies are built.
