file(REMOVE_RECURSE
  "CMakeFiles/choose_epsilon.dir/choose_epsilon.cpp.o"
  "CMakeFiles/choose_epsilon.dir/choose_epsilon.cpp.o.d"
  "choose_epsilon"
  "choose_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/choose_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
