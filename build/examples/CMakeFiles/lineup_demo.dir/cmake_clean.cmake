file(REMOVE_RECURSE
  "CMakeFiles/lineup_demo.dir/lineup_demo.cpp.o"
  "CMakeFiles/lineup_demo.dir/lineup_demo.cpp.o.d"
  "lineup_demo"
  "lineup_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lineup_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
