# Empty compiler generated dependencies file for lineup_demo.
# This may be replaced when dependencies are built.
