file(REMOVE_RECURSE
  "CMakeFiles/audit_model.dir/audit_model.cpp.o"
  "CMakeFiles/audit_model.dir/audit_model.cpp.o.d"
  "audit_model"
  "audit_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
