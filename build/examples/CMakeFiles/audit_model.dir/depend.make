# Empty dependencies file for audit_model.
# This may be replaced when dependencies are built.
