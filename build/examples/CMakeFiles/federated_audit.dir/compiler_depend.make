# Empty compiler generated dependencies file for federated_audit.
# This may be replaced when dependencies are built.
