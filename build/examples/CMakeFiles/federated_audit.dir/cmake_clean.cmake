file(REMOVE_RECURSE
  "CMakeFiles/federated_audit.dir/federated_audit.cpp.o"
  "CMakeFiles/federated_audit.dir/federated_audit.cpp.o.d"
  "federated_audit"
  "federated_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
