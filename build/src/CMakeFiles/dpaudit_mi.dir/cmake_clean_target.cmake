file(REMOVE_RECURSE
  "libdpaudit_mi.a"
)
