# Empty compiler generated dependencies file for dpaudit_mi.
# This may be replaced when dependencies are built.
