file(REMOVE_RECURSE
  "CMakeFiles/dpaudit_mi.dir/mi/membership_inference.cc.o"
  "CMakeFiles/dpaudit_mi.dir/mi/membership_inference.cc.o.d"
  "CMakeFiles/dpaudit_mi.dir/mi/shadow_attack.cc.o"
  "CMakeFiles/dpaudit_mi.dir/mi/shadow_attack.cc.o.d"
  "libdpaudit_mi.a"
  "libdpaudit_mi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaudit_mi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
