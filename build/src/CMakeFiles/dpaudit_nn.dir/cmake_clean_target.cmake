file(REMOVE_RECURSE
  "libdpaudit_nn.a"
)
