
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/CMakeFiles/dpaudit_nn.dir/nn/activations.cc.o" "gcc" "src/CMakeFiles/dpaudit_nn.dir/nn/activations.cc.o.d"
  "/root/repo/src/nn/channel_norm.cc" "src/CMakeFiles/dpaudit_nn.dir/nn/channel_norm.cc.o" "gcc" "src/CMakeFiles/dpaudit_nn.dir/nn/channel_norm.cc.o.d"
  "/root/repo/src/nn/conv2d.cc" "src/CMakeFiles/dpaudit_nn.dir/nn/conv2d.cc.o" "gcc" "src/CMakeFiles/dpaudit_nn.dir/nn/conv2d.cc.o.d"
  "/root/repo/src/nn/dense.cc" "src/CMakeFiles/dpaudit_nn.dir/nn/dense.cc.o" "gcc" "src/CMakeFiles/dpaudit_nn.dir/nn/dense.cc.o.d"
  "/root/repo/src/nn/gradient_check.cc" "src/CMakeFiles/dpaudit_nn.dir/nn/gradient_check.cc.o" "gcc" "src/CMakeFiles/dpaudit_nn.dir/nn/gradient_check.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/dpaudit_nn.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/dpaudit_nn.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/metrics.cc" "src/CMakeFiles/dpaudit_nn.dir/nn/metrics.cc.o" "gcc" "src/CMakeFiles/dpaudit_nn.dir/nn/metrics.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/CMakeFiles/dpaudit_nn.dir/nn/network.cc.o" "gcc" "src/CMakeFiles/dpaudit_nn.dir/nn/network.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/dpaudit_nn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/dpaudit_nn.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/pooling.cc" "src/CMakeFiles/dpaudit_nn.dir/nn/pooling.cc.o" "gcc" "src/CMakeFiles/dpaudit_nn.dir/nn/pooling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpaudit_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
