# Empty dependencies file for dpaudit_nn.
# This may be replaced when dependencies are built.
