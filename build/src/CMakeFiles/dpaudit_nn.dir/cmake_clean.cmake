file(REMOVE_RECURSE
  "CMakeFiles/dpaudit_nn.dir/nn/activations.cc.o"
  "CMakeFiles/dpaudit_nn.dir/nn/activations.cc.o.d"
  "CMakeFiles/dpaudit_nn.dir/nn/channel_norm.cc.o"
  "CMakeFiles/dpaudit_nn.dir/nn/channel_norm.cc.o.d"
  "CMakeFiles/dpaudit_nn.dir/nn/conv2d.cc.o"
  "CMakeFiles/dpaudit_nn.dir/nn/conv2d.cc.o.d"
  "CMakeFiles/dpaudit_nn.dir/nn/dense.cc.o"
  "CMakeFiles/dpaudit_nn.dir/nn/dense.cc.o.d"
  "CMakeFiles/dpaudit_nn.dir/nn/gradient_check.cc.o"
  "CMakeFiles/dpaudit_nn.dir/nn/gradient_check.cc.o.d"
  "CMakeFiles/dpaudit_nn.dir/nn/loss.cc.o"
  "CMakeFiles/dpaudit_nn.dir/nn/loss.cc.o.d"
  "CMakeFiles/dpaudit_nn.dir/nn/metrics.cc.o"
  "CMakeFiles/dpaudit_nn.dir/nn/metrics.cc.o.d"
  "CMakeFiles/dpaudit_nn.dir/nn/network.cc.o"
  "CMakeFiles/dpaudit_nn.dir/nn/network.cc.o.d"
  "CMakeFiles/dpaudit_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/dpaudit_nn.dir/nn/optimizer.cc.o.d"
  "CMakeFiles/dpaudit_nn.dir/nn/pooling.cc.o"
  "CMakeFiles/dpaudit_nn.dir/nn/pooling.cc.o.d"
  "libdpaudit_nn.a"
  "libdpaudit_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaudit_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
