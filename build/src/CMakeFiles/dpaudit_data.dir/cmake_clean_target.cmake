file(REMOVE_RECURSE
  "libdpaudit_data.a"
)
