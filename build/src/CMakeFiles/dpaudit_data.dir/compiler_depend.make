# Empty compiler generated dependencies file for dpaudit_data.
# This may be replaced when dependencies are built.
