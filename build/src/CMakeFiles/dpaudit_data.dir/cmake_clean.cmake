file(REMOVE_RECURSE
  "CMakeFiles/dpaudit_data.dir/data/dataset.cc.o"
  "CMakeFiles/dpaudit_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/dpaudit_data.dir/data/dataset_sensitivity.cc.o"
  "CMakeFiles/dpaudit_data.dir/data/dataset_sensitivity.cc.o.d"
  "CMakeFiles/dpaudit_data.dir/data/dissimilarity.cc.o"
  "CMakeFiles/dpaudit_data.dir/data/dissimilarity.cc.o.d"
  "CMakeFiles/dpaudit_data.dir/data/idx_format.cc.o"
  "CMakeFiles/dpaudit_data.dir/data/idx_format.cc.o.d"
  "CMakeFiles/dpaudit_data.dir/data/synthetic_mnist.cc.o"
  "CMakeFiles/dpaudit_data.dir/data/synthetic_mnist.cc.o.d"
  "CMakeFiles/dpaudit_data.dir/data/synthetic_purchase.cc.o"
  "CMakeFiles/dpaudit_data.dir/data/synthetic_purchase.cc.o.d"
  "libdpaudit_data.a"
  "libdpaudit_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaudit_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
