
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/dpaudit_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/dpaudit_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/dataset_sensitivity.cc" "src/CMakeFiles/dpaudit_data.dir/data/dataset_sensitivity.cc.o" "gcc" "src/CMakeFiles/dpaudit_data.dir/data/dataset_sensitivity.cc.o.d"
  "/root/repo/src/data/dissimilarity.cc" "src/CMakeFiles/dpaudit_data.dir/data/dissimilarity.cc.o" "gcc" "src/CMakeFiles/dpaudit_data.dir/data/dissimilarity.cc.o.d"
  "/root/repo/src/data/idx_format.cc" "src/CMakeFiles/dpaudit_data.dir/data/idx_format.cc.o" "gcc" "src/CMakeFiles/dpaudit_data.dir/data/idx_format.cc.o.d"
  "/root/repo/src/data/synthetic_mnist.cc" "src/CMakeFiles/dpaudit_data.dir/data/synthetic_mnist.cc.o" "gcc" "src/CMakeFiles/dpaudit_data.dir/data/synthetic_mnist.cc.o.d"
  "/root/repo/src/data/synthetic_purchase.cc" "src/CMakeFiles/dpaudit_data.dir/data/synthetic_purchase.cc.o" "gcc" "src/CMakeFiles/dpaudit_data.dir/data/synthetic_purchase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpaudit_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
