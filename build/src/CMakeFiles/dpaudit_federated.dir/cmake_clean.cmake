file(REMOVE_RECURSE
  "CMakeFiles/dpaudit_federated.dir/federated/federated.cc.o"
  "CMakeFiles/dpaudit_federated.dir/federated/federated.cc.o.d"
  "libdpaudit_federated.a"
  "libdpaudit_federated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaudit_federated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
