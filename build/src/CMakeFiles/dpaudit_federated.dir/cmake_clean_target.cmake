file(REMOVE_RECURSE
  "libdpaudit_federated.a"
)
