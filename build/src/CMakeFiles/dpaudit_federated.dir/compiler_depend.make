# Empty compiler generated dependencies file for dpaudit_federated.
# This may be replaced when dependencies are built.
