file(REMOVE_RECURSE
  "libdpaudit_tensor.a"
)
