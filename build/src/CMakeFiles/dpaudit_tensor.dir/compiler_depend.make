# Empty compiler generated dependencies file for dpaudit_tensor.
# This may be replaced when dependencies are built.
