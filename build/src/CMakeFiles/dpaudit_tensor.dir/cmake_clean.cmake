file(REMOVE_RECURSE
  "CMakeFiles/dpaudit_tensor.dir/tensor/tensor.cc.o"
  "CMakeFiles/dpaudit_tensor.dir/tensor/tensor.cc.o.d"
  "libdpaudit_tensor.a"
  "libdpaudit_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaudit_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
