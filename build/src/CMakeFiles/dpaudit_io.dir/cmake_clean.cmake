file(REMOVE_RECURSE
  "CMakeFiles/dpaudit_io.dir/io/serialization.cc.o"
  "CMakeFiles/dpaudit_io.dir/io/serialization.cc.o.d"
  "libdpaudit_io.a"
  "libdpaudit_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaudit_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
