file(REMOVE_RECURSE
  "libdpaudit_io.a"
)
