# Empty dependencies file for dpaudit_io.
# This may be replaced when dependencies are built.
