
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/analytic_gaussian.cc" "src/CMakeFiles/dpaudit_dp.dir/dp/analytic_gaussian.cc.o" "gcc" "src/CMakeFiles/dpaudit_dp.dir/dp/analytic_gaussian.cc.o.d"
  "/root/repo/src/dp/calibration.cc" "src/CMakeFiles/dpaudit_dp.dir/dp/calibration.cc.o" "gcc" "src/CMakeFiles/dpaudit_dp.dir/dp/calibration.cc.o.d"
  "/root/repo/src/dp/composition.cc" "src/CMakeFiles/dpaudit_dp.dir/dp/composition.cc.o" "gcc" "src/CMakeFiles/dpaudit_dp.dir/dp/composition.cc.o.d"
  "/root/repo/src/dp/mechanism.cc" "src/CMakeFiles/dpaudit_dp.dir/dp/mechanism.cc.o" "gcc" "src/CMakeFiles/dpaudit_dp.dir/dp/mechanism.cc.o.d"
  "/root/repo/src/dp/privacy_params.cc" "src/CMakeFiles/dpaudit_dp.dir/dp/privacy_params.cc.o" "gcc" "src/CMakeFiles/dpaudit_dp.dir/dp/privacy_params.cc.o.d"
  "/root/repo/src/dp/rdp_accountant.cc" "src/CMakeFiles/dpaudit_dp.dir/dp/rdp_accountant.cc.o" "gcc" "src/CMakeFiles/dpaudit_dp.dir/dp/rdp_accountant.cc.o.d"
  "/root/repo/src/dp/sensitivity.cc" "src/CMakeFiles/dpaudit_dp.dir/dp/sensitivity.cc.o" "gcc" "src/CMakeFiles/dpaudit_dp.dir/dp/sensitivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpaudit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
