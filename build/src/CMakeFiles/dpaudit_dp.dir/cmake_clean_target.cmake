file(REMOVE_RECURSE
  "libdpaudit_dp.a"
)
