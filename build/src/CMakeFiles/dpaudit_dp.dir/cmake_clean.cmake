file(REMOVE_RECURSE
  "CMakeFiles/dpaudit_dp.dir/dp/analytic_gaussian.cc.o"
  "CMakeFiles/dpaudit_dp.dir/dp/analytic_gaussian.cc.o.d"
  "CMakeFiles/dpaudit_dp.dir/dp/calibration.cc.o"
  "CMakeFiles/dpaudit_dp.dir/dp/calibration.cc.o.d"
  "CMakeFiles/dpaudit_dp.dir/dp/composition.cc.o"
  "CMakeFiles/dpaudit_dp.dir/dp/composition.cc.o.d"
  "CMakeFiles/dpaudit_dp.dir/dp/mechanism.cc.o"
  "CMakeFiles/dpaudit_dp.dir/dp/mechanism.cc.o.d"
  "CMakeFiles/dpaudit_dp.dir/dp/privacy_params.cc.o"
  "CMakeFiles/dpaudit_dp.dir/dp/privacy_params.cc.o.d"
  "CMakeFiles/dpaudit_dp.dir/dp/rdp_accountant.cc.o"
  "CMakeFiles/dpaudit_dp.dir/dp/rdp_accountant.cc.o.d"
  "CMakeFiles/dpaudit_dp.dir/dp/sensitivity.cc.o"
  "CMakeFiles/dpaudit_dp.dir/dp/sensitivity.cc.o.d"
  "libdpaudit_dp.a"
  "libdpaudit_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaudit_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
