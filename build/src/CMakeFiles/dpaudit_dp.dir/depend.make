# Empty dependencies file for dpaudit_dp.
# This may be replaced when dependencies are built.
