file(REMOVE_RECURSE
  "CMakeFiles/dpaudit_stats.dir/stats/divergence.cc.o"
  "CMakeFiles/dpaudit_stats.dir/stats/divergence.cc.o.d"
  "CMakeFiles/dpaudit_stats.dir/stats/histogram.cc.o"
  "CMakeFiles/dpaudit_stats.dir/stats/histogram.cc.o.d"
  "CMakeFiles/dpaudit_stats.dir/stats/normal.cc.o"
  "CMakeFiles/dpaudit_stats.dir/stats/normal.cc.o.d"
  "CMakeFiles/dpaudit_stats.dir/stats/summary.cc.o"
  "CMakeFiles/dpaudit_stats.dir/stats/summary.cc.o.d"
  "libdpaudit_stats.a"
  "libdpaudit_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaudit_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
