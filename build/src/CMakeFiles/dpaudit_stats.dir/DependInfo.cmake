
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/divergence.cc" "src/CMakeFiles/dpaudit_stats.dir/stats/divergence.cc.o" "gcc" "src/CMakeFiles/dpaudit_stats.dir/stats/divergence.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/dpaudit_stats.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/dpaudit_stats.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/normal.cc" "src/CMakeFiles/dpaudit_stats.dir/stats/normal.cc.o" "gcc" "src/CMakeFiles/dpaudit_stats.dir/stats/normal.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/CMakeFiles/dpaudit_stats.dir/stats/summary.cc.o" "gcc" "src/CMakeFiles/dpaudit_stats.dir/stats/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpaudit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
