# Empty dependencies file for dpaudit_stats.
# This may be replaced when dependencies are built.
