file(REMOVE_RECURSE
  "libdpaudit_stats.a"
)
