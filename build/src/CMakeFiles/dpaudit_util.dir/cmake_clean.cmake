file(REMOVE_RECURSE
  "CMakeFiles/dpaudit_util.dir/util/arg_parser.cc.o"
  "CMakeFiles/dpaudit_util.dir/util/arg_parser.cc.o.d"
  "CMakeFiles/dpaudit_util.dir/util/logging.cc.o"
  "CMakeFiles/dpaudit_util.dir/util/logging.cc.o.d"
  "CMakeFiles/dpaudit_util.dir/util/math_util.cc.o"
  "CMakeFiles/dpaudit_util.dir/util/math_util.cc.o.d"
  "CMakeFiles/dpaudit_util.dir/util/random.cc.o"
  "CMakeFiles/dpaudit_util.dir/util/random.cc.o.d"
  "CMakeFiles/dpaudit_util.dir/util/status.cc.o"
  "CMakeFiles/dpaudit_util.dir/util/status.cc.o.d"
  "CMakeFiles/dpaudit_util.dir/util/table_writer.cc.o"
  "CMakeFiles/dpaudit_util.dir/util/table_writer.cc.o.d"
  "CMakeFiles/dpaudit_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/dpaudit_util.dir/util/thread_pool.cc.o.d"
  "libdpaudit_util.a"
  "libdpaudit_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaudit_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
