# Empty compiler generated dependencies file for dpaudit_util.
# This may be replaced when dependencies are built.
