file(REMOVE_RECURSE
  "libdpaudit_util.a"
)
