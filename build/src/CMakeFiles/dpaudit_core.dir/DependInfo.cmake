
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adversary.cc" "src/CMakeFiles/dpaudit_core.dir/core/adversary.cc.o" "gcc" "src/CMakeFiles/dpaudit_core.dir/core/adversary.cc.o.d"
  "/root/repo/src/core/auditor.cc" "src/CMakeFiles/dpaudit_core.dir/core/auditor.cc.o" "gcc" "src/CMakeFiles/dpaudit_core.dir/core/auditor.cc.o.d"
  "/root/repo/src/core/belief.cc" "src/CMakeFiles/dpaudit_core.dir/core/belief.cc.o" "gcc" "src/CMakeFiles/dpaudit_core.dir/core/belief.cc.o.d"
  "/root/repo/src/core/dpsgd.cc" "src/CMakeFiles/dpaudit_core.dir/core/dpsgd.cc.o" "gcc" "src/CMakeFiles/dpaudit_core.dir/core/dpsgd.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/dpaudit_core.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/dpaudit_core.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/multi_world.cc" "src/CMakeFiles/dpaudit_core.dir/core/multi_world.cc.o" "gcc" "src/CMakeFiles/dpaudit_core.dir/core/multi_world.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/CMakeFiles/dpaudit_core.dir/core/policy.cc.o" "gcc" "src/CMakeFiles/dpaudit_core.dir/core/policy.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/dpaudit_core.dir/core/report.cc.o" "gcc" "src/CMakeFiles/dpaudit_core.dir/core/report.cc.o.d"
  "/root/repo/src/core/scores.cc" "src/CMakeFiles/dpaudit_core.dir/core/scores.cc.o" "gcc" "src/CMakeFiles/dpaudit_core.dir/core/scores.cc.o.d"
  "/root/repo/src/core/subsampling.cc" "src/CMakeFiles/dpaudit_core.dir/core/subsampling.cc.o" "gcc" "src/CMakeFiles/dpaudit_core.dir/core/subsampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpaudit_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
