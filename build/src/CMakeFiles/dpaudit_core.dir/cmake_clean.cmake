file(REMOVE_RECURSE
  "CMakeFiles/dpaudit_core.dir/core/adversary.cc.o"
  "CMakeFiles/dpaudit_core.dir/core/adversary.cc.o.d"
  "CMakeFiles/dpaudit_core.dir/core/auditor.cc.o"
  "CMakeFiles/dpaudit_core.dir/core/auditor.cc.o.d"
  "CMakeFiles/dpaudit_core.dir/core/belief.cc.o"
  "CMakeFiles/dpaudit_core.dir/core/belief.cc.o.d"
  "CMakeFiles/dpaudit_core.dir/core/dpsgd.cc.o"
  "CMakeFiles/dpaudit_core.dir/core/dpsgd.cc.o.d"
  "CMakeFiles/dpaudit_core.dir/core/experiment.cc.o"
  "CMakeFiles/dpaudit_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/dpaudit_core.dir/core/multi_world.cc.o"
  "CMakeFiles/dpaudit_core.dir/core/multi_world.cc.o.d"
  "CMakeFiles/dpaudit_core.dir/core/policy.cc.o"
  "CMakeFiles/dpaudit_core.dir/core/policy.cc.o.d"
  "CMakeFiles/dpaudit_core.dir/core/report.cc.o"
  "CMakeFiles/dpaudit_core.dir/core/report.cc.o.d"
  "CMakeFiles/dpaudit_core.dir/core/scores.cc.o"
  "CMakeFiles/dpaudit_core.dir/core/scores.cc.o.d"
  "CMakeFiles/dpaudit_core.dir/core/subsampling.cc.o"
  "CMakeFiles/dpaudit_core.dir/core/subsampling.cc.o.d"
  "libdpaudit_core.a"
  "libdpaudit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaudit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
