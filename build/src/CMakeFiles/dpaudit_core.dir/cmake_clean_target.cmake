file(REMOVE_RECURSE
  "libdpaudit_core.a"
)
