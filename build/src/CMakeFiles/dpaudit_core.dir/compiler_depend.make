# Empty compiler generated dependencies file for dpaudit_core.
# This may be replaced when dependencies are built.
