file(REMOVE_RECURSE
  "CMakeFiles/multi_world_test.dir/multi_world_test.cc.o"
  "CMakeFiles/multi_world_test.dir/multi_world_test.cc.o.d"
  "multi_world_test"
  "multi_world_test.pdb"
  "multi_world_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
