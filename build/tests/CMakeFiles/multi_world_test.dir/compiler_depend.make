# Empty compiler generated dependencies file for multi_world_test.
# This may be replaced when dependencies are built.
