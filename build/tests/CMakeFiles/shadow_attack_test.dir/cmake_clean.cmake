file(REMOVE_RECURSE
  "CMakeFiles/shadow_attack_test.dir/shadow_attack_test.cc.o"
  "CMakeFiles/shadow_attack_test.dir/shadow_attack_test.cc.o.d"
  "shadow_attack_test"
  "shadow_attack_test.pdb"
  "shadow_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
