# Empty compiler generated dependencies file for shadow_attack_test.
# This may be replaced when dependencies are built.
