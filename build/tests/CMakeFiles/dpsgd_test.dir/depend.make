# Empty dependencies file for dpsgd_test.
# This may be replaced when dependencies are built.
