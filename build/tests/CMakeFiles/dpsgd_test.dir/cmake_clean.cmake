file(REMOVE_RECURSE
  "CMakeFiles/dpsgd_test.dir/dpsgd_test.cc.o"
  "CMakeFiles/dpsgd_test.dir/dpsgd_test.cc.o.d"
  "dpsgd_test"
  "dpsgd_test.pdb"
  "dpsgd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpsgd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
