file(REMOVE_RECURSE
  "CMakeFiles/dataset_sensitivity_test.dir/dataset_sensitivity_test.cc.o"
  "CMakeFiles/dataset_sensitivity_test.dir/dataset_sensitivity_test.cc.o.d"
  "dataset_sensitivity_test"
  "dataset_sensitivity_test.pdb"
  "dataset_sensitivity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_sensitivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
