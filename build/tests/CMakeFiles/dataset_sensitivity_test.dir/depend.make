# Empty dependencies file for dataset_sensitivity_test.
# This may be replaced when dependencies are built.
