file(REMOVE_RECURSE
  "CMakeFiles/dissimilarity_test.dir/dissimilarity_test.cc.o"
  "CMakeFiles/dissimilarity_test.dir/dissimilarity_test.cc.o.d"
  "dissimilarity_test"
  "dissimilarity_test.pdb"
  "dissimilarity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dissimilarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
