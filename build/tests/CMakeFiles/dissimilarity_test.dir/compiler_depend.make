# Empty compiler generated dependencies file for dissimilarity_test.
# This may be replaced when dependencies are built.
