file(REMOVE_RECURSE
  "CMakeFiles/arg_parser_test.dir/arg_parser_test.cc.o"
  "CMakeFiles/arg_parser_test.dir/arg_parser_test.cc.o.d"
  "arg_parser_test"
  "arg_parser_test.pdb"
  "arg_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arg_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
