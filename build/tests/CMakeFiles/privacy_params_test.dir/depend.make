# Empty dependencies file for privacy_params_test.
# This may be replaced when dependencies are built.
