# Empty compiler generated dependencies file for mi_test.
# This may be replaced when dependencies are built.
