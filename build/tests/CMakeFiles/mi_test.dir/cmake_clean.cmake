file(REMOVE_RECURSE
  "CMakeFiles/mi_test.dir/mi_test.cc.o"
  "CMakeFiles/mi_test.dir/mi_test.cc.o.d"
  "mi_test"
  "mi_test.pdb"
  "mi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
