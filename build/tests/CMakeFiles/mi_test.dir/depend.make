# Empty dependencies file for mi_test.
# This may be replaced when dependencies are built.
