file(REMOVE_RECURSE
  "CMakeFiles/subsampling_test.dir/subsampling_test.cc.o"
  "CMakeFiles/subsampling_test.dir/subsampling_test.cc.o.d"
  "subsampling_test"
  "subsampling_test.pdb"
  "subsampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subsampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
