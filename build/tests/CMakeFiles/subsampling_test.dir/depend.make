# Empty dependencies file for subsampling_test.
# This may be replaced when dependencies are built.
