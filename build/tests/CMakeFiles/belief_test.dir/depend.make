# Empty dependencies file for belief_test.
# This may be replaced when dependencies are built.
