file(REMOVE_RECURSE
  "CMakeFiles/belief_test.dir/belief_test.cc.o"
  "CMakeFiles/belief_test.dir/belief_test.cc.o.d"
  "belief_test"
  "belief_test.pdb"
  "belief_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/belief_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
