
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/report_test.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/report_test.dir/report_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpaudit_mi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_federated.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpaudit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
