# Empty dependencies file for idx_format_test.
# This may be replaced when dependencies are built.
