file(REMOVE_RECURSE
  "CMakeFiles/idx_format_test.dir/idx_format_test.cc.o"
  "CMakeFiles/idx_format_test.dir/idx_format_test.cc.o.d"
  "idx_format_test"
  "idx_format_test.pdb"
  "idx_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idx_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
