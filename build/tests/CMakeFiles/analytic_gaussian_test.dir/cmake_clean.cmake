file(REMOVE_RECURSE
  "CMakeFiles/analytic_gaussian_test.dir/analytic_gaussian_test.cc.o"
  "CMakeFiles/analytic_gaussian_test.dir/analytic_gaussian_test.cc.o.d"
  "analytic_gaussian_test"
  "analytic_gaussian_test.pdb"
  "analytic_gaussian_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_gaussian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
