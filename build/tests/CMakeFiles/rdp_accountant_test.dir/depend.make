# Empty dependencies file for rdp_accountant_test.
# This may be replaced when dependencies are built.
