file(REMOVE_RECURSE
  "CMakeFiles/rdp_accountant_test.dir/rdp_accountant_test.cc.o"
  "CMakeFiles/rdp_accountant_test.dir/rdp_accountant_test.cc.o.d"
  "rdp_accountant_test"
  "rdp_accountant_test.pdb"
  "rdp_accountant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdp_accountant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
