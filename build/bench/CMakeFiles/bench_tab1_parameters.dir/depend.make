# Empty dependencies file for bench_tab1_parameters.
# This may be replaced when dependencies are built.
