file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_parameters.dir/bench_tab1_parameters.cc.o"
  "CMakeFiles/bench_tab1_parameters.dir/bench_tab1_parameters.cc.o.d"
  "bench_tab1_parameters"
  "bench_tab1_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
