# Empty dependencies file for bench_fig09_eps_from_belief.
# This may be replaced when dependencies are built.
