file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_eps_from_belief.dir/bench_fig09_eps_from_belief.cc.o"
  "CMakeFiles/bench_fig09_eps_from_belief.dir/bench_fig09_eps_from_belief.cc.o.d"
  "bench_fig09_eps_from_belief"
  "bench_fig09_eps_from_belief.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_eps_from_belief.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
