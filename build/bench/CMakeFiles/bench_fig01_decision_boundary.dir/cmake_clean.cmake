file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_decision_boundary.dir/bench_fig01_decision_boundary.cc.o"
  "CMakeFiles/bench_fig01_decision_boundary.dir/bench_fig01_decision_boundary.cc.o.d"
  "bench_fig01_decision_boundary"
  "bench_fig01_decision_boundary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_decision_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
