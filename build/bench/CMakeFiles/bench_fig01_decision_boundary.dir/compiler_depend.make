# Empty compiler generated dependencies file for bench_fig01_decision_boundary.
# This may be replaced when dependencies are built.
