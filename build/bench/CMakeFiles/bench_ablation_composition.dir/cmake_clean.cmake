file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_composition.dir/bench_ablation_composition.cc.o"
  "CMakeFiles/bench_ablation_composition.dir/bench_ablation_composition.cc.o.d"
  "bench_ablation_composition"
  "bench_ablation_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
