# Empty dependencies file for bench_ablation_composition.
# This may be replaced when dependencies are built.
