file(REMOVE_RECURSE
  "CMakeFiles/bench_laplace_reference.dir/bench_laplace_reference.cc.o"
  "CMakeFiles/bench_laplace_reference.dir/bench_laplace_reference.cc.o.d"
  "bench_laplace_reference"
  "bench_laplace_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_laplace_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
