# Empty dependencies file for bench_laplace_reference.
# This may be replaced when dependencies are built.
