# Empty dependencies file for bench_fig05_sensitivity_course.
# This may be replaced when dependencies are built.
