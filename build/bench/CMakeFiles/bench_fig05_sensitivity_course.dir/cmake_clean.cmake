file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_sensitivity_course.dir/bench_fig05_sensitivity_course.cc.o"
  "CMakeFiles/bench_fig05_sensitivity_course.dir/bench_fig05_sensitivity_course.cc.o.d"
  "bench_fig05_sensitivity_course"
  "bench_fig05_sensitivity_course.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_sensitivity_course.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
