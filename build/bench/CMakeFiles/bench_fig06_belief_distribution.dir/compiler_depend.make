# Empty compiler generated dependencies file for bench_fig06_belief_distribution.
# This may be replaced when dependencies are built.
