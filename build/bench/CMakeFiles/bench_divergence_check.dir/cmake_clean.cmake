file(REMOVE_RECURSE
  "CMakeFiles/bench_divergence_check.dir/bench_divergence_check.cc.o"
  "CMakeFiles/bench_divergence_check.dir/bench_divergence_check.cc.o.d"
  "bench_divergence_check"
  "bench_divergence_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_divergence_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
