# Empty compiler generated dependencies file for bench_divergence_check.
# This may be replaced when dependencies are built.
