file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_adaptive_clip.dir/bench_ablation_adaptive_clip.cc.o"
  "CMakeFiles/bench_ablation_adaptive_clip.dir/bench_ablation_adaptive_clip.cc.o.d"
  "bench_ablation_adaptive_clip"
  "bench_ablation_adaptive_clip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adaptive_clip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
