# Empty dependencies file for bench_ablation_adaptive_clip.
# This may be replaced when dependencies are built.
