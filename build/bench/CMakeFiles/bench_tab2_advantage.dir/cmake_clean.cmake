file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_advantage.dir/bench_tab2_advantage.cc.o"
  "CMakeFiles/bench_tab2_advantage.dir/bench_tab2_advantage.cc.o.d"
  "bench_tab2_advantage"
  "bench_tab2_advantage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_advantage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
