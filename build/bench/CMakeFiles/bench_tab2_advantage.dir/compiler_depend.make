# Empty compiler generated dependencies file for bench_tab2_advantage.
# This may be replaced when dependencies are built.
