# Empty compiler generated dependencies file for bench_fig04_dataset_sensitivity.
# This may be replaced when dependencies are built.
