# Empty dependencies file for bench_fig08_eps_from_sensitivity.
# This may be replaced when dependencies are built.
