# Empty dependencies file for bench_fig03_scores.
# This may be replaced when dependencies are built.
