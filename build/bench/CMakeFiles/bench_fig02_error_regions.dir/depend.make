# Empty dependencies file for bench_fig02_error_regions.
# This may be replaced when dependencies are built.
