file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_eps_from_advantage.dir/bench_fig10_eps_from_advantage.cc.o"
  "CMakeFiles/bench_fig10_eps_from_advantage.dir/bench_fig10_eps_from_advantage.cc.o.d"
  "bench_fig10_eps_from_advantage"
  "bench_fig10_eps_from_advantage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_eps_from_advantage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
