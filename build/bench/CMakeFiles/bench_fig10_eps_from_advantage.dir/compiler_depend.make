# Empty compiler generated dependencies file for bench_fig10_eps_from_advantage.
# This may be replaced when dependencies are built.
