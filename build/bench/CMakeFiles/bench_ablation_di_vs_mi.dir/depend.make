# Empty dependencies file for bench_ablation_di_vs_mi.
# This may be replaced when dependencies are built.
