file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_di_vs_mi.dir/bench_ablation_di_vs_mi.cc.o"
  "CMakeFiles/bench_ablation_di_vs_mi.dir/bench_ablation_di_vs_mi.cc.o.d"
  "bench_ablation_di_vs_mi"
  "bench_ablation_di_vs_mi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_di_vs_mi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
