file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_optimizers.dir/bench_ablation_optimizers.cc.o"
  "CMakeFiles/bench_ablation_optimizers.dir/bench_ablation_optimizers.cc.o.d"
  "bench_ablation_optimizers"
  "bench_ablation_optimizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_optimizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
