file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lineup.dir/bench_ablation_lineup.cc.o"
  "CMakeFiles/bench_ablation_lineup.dir/bench_ablation_lineup.cc.o.d"
  "bench_ablation_lineup"
  "bench_ablation_lineup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lineup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
