# Empty dependencies file for bench_ablation_lineup.
# This may be replaced when dependencies are built.
