// Pass 2 of the tree-wide analysis engine: the TreeModel stitches every
// FileModel into an include graph plus a symbol cross-reference, and the
// graph rules run over it. Cross-TU invariants live here — architectural
// layering (tools/lint/layers.txt), include cycles, IWYU-lite include
// hygiene, and the DP mechanism-flow rule that ties every mechanism call
// site back to the clipping/sensitivity helpers. See DESIGN.md §14.

#ifndef DPAUDIT_TOOLS_LINT_MODEL_H_
#define DPAUDIT_TOOLS_LINT_MODEL_H_

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"
#include "tools/lint/lint.h"

namespace dpaudit {
namespace lint {

/// The allowed-edge matrix for dpaudit-layering, parsed from
/// tools/lint/layers.txt. Three directive kinds:
///   layer <name> <path-prefix>...   assigns files to a named layer
///   allow <from> <to>... | *        permits include edges between layers
///   restrict <target-prefix> <includer-prefix>...
///                                   locks specific headers to named callers
/// A file matching no layer is unconstrained; an edge within one layer is
/// always allowed.
struct LayerConfig {
  struct Layer {
    std::string name;
    std::vector<std::string> prefixes;  // match "<prefix>/" or exact
  };
  struct Restriction {
    std::string target_prefix;
    std::vector<std::string> allowed_prefixes;
    int line = 0;  // in the config file, for diagnostics
  };
  std::vector<Layer> layers;
  std::map<std::string, std::vector<std::string>> allowed;  // from -> to*
  std::vector<Restriction> restrictions;
  std::string origin;  // config path, quoted in messages

  /// Longest-prefix layer match, or nullptr.
  const Layer* LayerOf(const std::string& rel) const;
};

/// Parses a layers.txt. Returns false (and sets `error`) on malformed
/// directives or references to undeclared layers.
bool ParseLayerConfig(const std::string& contents, const std::string& origin,
                      LayerConfig* config, std::string* error);
bool LoadLayerConfig(const std::string& path, LayerConfig* config,
                     std::string* error);

/// The whole tree, resolved: files sorted by rel path, include edges
/// resolved against the model, and the declared-symbol index.
struct TreeModel {
  struct Edge {
    size_t target = 0;    // index into files
    int line = 0;         // include line in the source file
    std::string spelled;  // as written
  };
  std::vector<FileModel> files;          // sorted by rel
  std::vector<std::vector<Edge>> edges;  // parallel to files
  LayerConfig layers;

  const FileModel* Find(const std::string& rel) const;
  size_t IndexOf(const std::string& rel) const;  // files.size() if absent

  /// Resolves an include spelling against the model ("util/x.h" ->
  /// "src/util/x.h" or the spelling itself). files.size() when the target
  /// is not part of the model (system or third-party header).
  size_t ResolveInclude(const std::string& spelled) const;
};

/// Builds the tree model (sorts files, resolves edges). `layers` may be an
/// empty config; dpaudit-layering then has nothing to check.
TreeModel BuildTreeModel(std::vector<FileModel> files, LayerConfig layers);

/// Metadata plus implementation for one cross-TU rule.
struct GraphRule {
  std::string name;     // "dpaudit-<slug>"
  std::string summary;  // one line, shown by --list-rules
  void (*check)(const TreeModel& tree, std::vector<Finding>* out);
};

/// Every registered graph rule, in stable (alphabetical) order.
const std::vector<GraphRule>& AllGraphRules();

/// Runs the graph rules (all of them when `rules` is empty) and appends
/// NOLINT-filtered findings. Findings are suppressed through the FileModel
/// suppression records, so `// NOLINT(dpaudit-layering)` on an #include
/// line works exactly like the per-file rules.
void RunGraphRules(const TreeModel& tree, const std::vector<std::string>& rules,
                   std::vector<Finding>* out);

/// True when `name` names a registered per-file or graph rule.
bool IsKnownRule(const std::string& name);

}  // namespace lint
}  // namespace dpaudit

#endif  // DPAUDIT_TOOLS_LINT_MODEL_H_
