#include "tools/lint/lexer.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dpaudit {
namespace lint {
namespace {

// Bumped whenever the lexer or any per-file rule changes behavior, so stale
// cache entries (tools/lint/cache.h) never survive a tool upgrade.
constexpr uint64_t kLexerVersion = 4;

// Keywords, builtin types, and ubiquitous std vocabulary that never
// identify a repo symbol. Keeping them out of the ref set shrinks the cache
// and removes xref noise.
const std::set<std::string>& StopWords() {
  static const std::set<std::string> kStop = {
      "alignas", "alignof", "and", "auto", "bool", "break", "case", "catch",
      "char", "class", "const", "const_cast", "consteval", "constexpr",
      "constinit", "continue", "decltype", "default", "delete", "do",
      "double", "dynamic_cast", "else", "enum", "explicit", "extern",
      "false", "final", "float", "for", "friend", "goto", "if", "inline",
      "int", "long", "mutable", "namespace", "new", "noexcept", "not",
      "nullptr", "operator", "or", "override", "private", "protected",
      "public", "register", "reinterpret_cast", "return", "short", "signed",
      "sizeof", "static", "static_assert", "static_cast", "struct",
      "switch", "template", "this", "throw", "true", "try", "typedef",
      "typeid", "typename", "union", "unsigned", "using", "virtual", "void",
      "volatile", "wchar_t", "while",
      // builtin-adjacent vocabulary
      "std", "size_t", "ssize_t", "ptrdiff_t", "intptr_t", "uintptr_t",
      "int8_t", "int16_t", "int32_t", "int64_t", "uint8_t", "uint16_t",
      "uint32_t", "uint64_t", "char8_t", "char16_t", "char32_t",
  };
  return kStop;
}

bool IsKeywordish(const std::string& token) {
  return token.size() < 2 || StopWords().count(token) != 0;
}

/// The identifier token ending at position `end` (exclusive) of `line`, or
/// empty when the preceding characters are not an identifier.
std::string IdentEndingAt(const std::string& line, size_t end) {
  size_t begin = end;
  while (begin > 0 && IsIdentChar(line[begin - 1])) --begin;
  if (begin == end) return std::string();
  if (std::isdigit(static_cast<unsigned char>(line[begin])) != 0) {
    return std::string();
  }
  return line.substr(begin, end - begin);
}

/// The first identifier token starting at or after `pos`; advances `pos`
/// past it. Returns empty at end of line.
std::string NextIdent(const std::string& line, size_t* pos) {
  size_t p = *pos;
  while (p < line.size()) {
    const char c = line[p];
    const bool start = (std::isalpha(static_cast<unsigned char>(c)) != 0 ||
                        c == '_') &&
                       (p == 0 || !IsIdentChar(line[p - 1]));
    if (start) break;
    ++p;
  }
  if (p >= line.size()) {
    *pos = line.size();
    return std::string();
  }
  size_t end = p;
  while (end < line.size() && IsIdentChar(line[end])) ++end;
  *pos = end;
  return line.substr(p, end - p);
}

void AddDecl(std::vector<SymbolDecl>* decls, std::set<std::string>* seen,
             const std::string& name, SymbolKind kind, int line) {
  if (name.empty() || IsKeywordish(name)) return;
  if (!seen->insert(name + '\0' + static_cast<char>('0' + int(kind)))
           .second) {
    return;
  }
  SymbolDecl d;
  d.name = name;
  d.kind = kind;
  d.line = line;
  decls->push_back(std::move(d));
}

/// True when an unmatched '<' precedes `pos` on the line — the keyword sits
/// inside a template parameter list ("template <class T>").
bool InsideTemplateBrackets(const std::string& line, size_t pos) {
  int depth = 0;
  for (size_t i = 0; i < pos && i < line.size(); ++i) {
    if (line[i] == '<') ++depth;
    if (line[i] == '>') --depth;
  }
  return depth > 0;
}

void ExtractTypeDecls(const std::string& line, int lineno,
                      std::vector<SymbolDecl>* decls,
                      std::set<std::string>* seen) {
  for (const char* kw : {"class", "struct", "enum", "union"}) {
    size_t pos = 0;
    const std::string keyword(kw);
    while ((pos = line.find(keyword, pos)) != std::string::npos) {
      const size_t end = pos + keyword.size();
      const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
      const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
      if (!left_ok || !right_ok || InsideTemplateBrackets(line, pos)) {
        pos = end;
        continue;
      }
      size_t p = end;
      std::string name = NextIdent(line, &p);
      if (keyword == "enum" && (name == "class" || name == "struct")) {
        name = NextIdent(line, &p);
      }
      // Skip attribute-ish / macro-ish all-caps tokens between keyword and
      // name is overkill here; accept the first identifier.
      if (!name.empty()) {
        size_t q = p;
        while (q < line.size() && line[q] == ' ') ++q;
        const char next = q < line.size() ? line[q] : '\0';
        // `class X;` is a forward declaration, not a definition; the
        // declaring header is whoever defines X. Still record it as a
        // suppression-only name (kVariable is never indexed as a declarer)
        // so a file that deliberately forward-declares is not told to add
        // the #include it avoided.
        if (next != ';') {
          AddDecl(decls, seen, name, SymbolKind::kType, lineno);
        } else {
          AddDecl(decls, seen, name, SymbolKind::kVariable, lineno);
        }
      }
      pos = end;
    }
  }
  // using X = ...;
  size_t pos = 0;
  while ((pos = line.find("using", pos)) != std::string::npos) {
    const size_t end = pos + 5;
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) {
      size_t p = end;
      const std::string name = NextIdent(line, &p);
      size_t q = p;
      while (q < line.size() && line[q] == ' ') ++q;
      if (!name.empty() && name != "namespace" && q < line.size() &&
          line[q] == '=') {
        AddDecl(decls, seen, name, SymbolKind::kType, lineno);
      }
    }
    pos = end;
  }
  // typedef ... Name;
  if (StartsWith(line, "typedef")) {
    const size_t semi = line.find(';');
    if (semi != std::string::npos) {
      AddDecl(decls, seen, IdentEndingAt(line, semi), SymbolKind::kType,
              lineno);
    }
  }
}

/// Declarations that start at column 0: free functions and namespace-scope
/// variables. Google style keeps namespace contents unindented, so
/// column 0 is exactly "namespace scope" in this tree; class members are
/// indented and intentionally excluded (they are reachable through the
/// class name in the xref).
void ExtractColumnZeroDecls(const std::string& line, int lineno,
                            std::vector<SymbolDecl>* decls,
                            std::set<std::string>* seen) {
  if (line.empty() || !IsIdentChar(line[0]) ||
      std::isdigit(static_cast<unsigned char>(line[0])) != 0) {
    return;
  }
  size_t p = 0;
  const std::string first = NextIdent(line, &p);
  static const std::set<std::string> kSkipLead = {
      "if", "else", "for", "while", "do", "switch", "case", "return",
      "namespace", "using", "typedef", "template", "public", "private",
      "protected", "friend", "operator", "static_assert", "else",
  };
  if (kSkipLead.count(first) != 0) return;
  const size_t paren = line.find('(');
  if (paren != std::string::npos) {
    const std::string name = IdentEndingAt(line, paren);
    if (name.empty() || IsKeywordish(name)) return;
    // `Class::Method(` is an out-of-line definition; the declaration lives
    // with the class.
    const size_t name_begin = paren - name.size();
    if (name_begin >= 1 && line[name_begin - 1] == ':') return;
    // A lone `Name(` at column 0 (macro invocation) has no return type
    // before it; require the name not be the first token unless the line
    // also looks like a constructor — skipping those costs little.
    if (name == first) return;
    AddDecl(decls, seen, name, SymbolKind::kFunction, lineno);
    return;
  }
  // Variable / constant: last identifier before '=' (not '==') or ';'.
  for (size_t q = 0; q < line.size(); ++q) {
    if (line[q] == '=' &&
        (q + 1 >= line.size() || line[q + 1] != '=') &&
        (q == 0 || std::string("=!<>+-*/%&|^").find(line[q - 1]) ==
                       std::string::npos)) {
      size_t end = q;
      while (end > 0 && line[end - 1] == ' ') --end;
      const std::string name = IdentEndingAt(line, end);
      if (!name.empty() && !IsKeywordish(name) && name != first) {
        AddDecl(decls, seen, name, SymbolKind::kVariable, lineno);
      }
      return;
    }
  }
}

/// Indented method-style declarations: `  void Add(double x);` inside a
/// class body. Recorded as kVariable — visible to the file's own-name set
/// (so a member named `Add` never reads as reliance on some header's free
/// `Add`) but never indexed as a cross-TU declarer. Over-capturing here only
/// quiets dpaudit-missing-include, so the heuristic errs permissive.
void ExtractIndentedMemberDecls(const std::string& line, int lineno,
                                std::vector<SymbolDecl>* decls,
                                std::set<std::string>* seen) {
  if (line.empty() || (line[0] != ' ' && line[0] != '\t')) return;
  const size_t paren = line.find('(');
  if (paren == std::string::npos) return;
  const std::string name = IdentEndingAt(line, paren);
  if (name.empty() || IsKeywordish(name)) return;
  size_t p = 0;
  const std::string first = NextIdent(line, &p);
  // `  Foo(bar);` is a call statement, not a declaration.
  if (name == first) return;
  static const std::set<std::string> kSkipLead = {
      "if", "else", "for", "while", "do", "switch", "case", "return",
      "new", "delete", "throw", "goto", "using", "namespace", "template",
  };
  if (kSkipLead.count(first) != 0) return;
  // `  double x = Foo(1);` initializes from a call; Foo stays a free ref.
  if (line.find('=') < paren) return;
  const size_t name_begin = paren - name.size();
  if (name_begin >= 1 &&
      (line[name_begin - 1] == ':' || line[name_begin - 1] == '.' ||
       line[name_begin - 1] == '>')) {
    return;
  }
  AddDecl(decls, seen, name, SymbolKind::kVariable, lineno);
}

void ExtractRefs(const std::vector<std::string>& code_lines,
                 std::vector<SymbolRef>* refs) {
  struct RefInfo {
    int first_line = 0;
    bool has_free = false;
  };
  std::map<std::string, RefInfo> seen;
  for (size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& line = code_lines[i];
    size_t pos = 0;
    while (pos < line.size()) {
      const size_t start = pos;
      const std::string token = NextIdent(line, &pos);
      if (token.empty()) break;
      if (IsKeywordish(token)) continue;
      const size_t begin = pos - token.size();
      (void)start;
      const bool member =
          (begin >= 1 && line[begin - 1] == '.' &&
           (begin < 2 ||
            std::isdigit(static_cast<unsigned char>(line[begin - 2])) ==
                0)) ||
          (begin >= 2 && line[begin - 2] == '-' && line[begin - 1] == '>');
      // `Class::Method` definitions and `Enum::kValue` accesses reach the
      // name through a qualifier, so the token alone does not tie this file
      // to the header that happens to declare an unrelated symbol of the
      // same spelling.
      const bool qualified =
          begin >= 2 && line[begin - 1] == ':' && line[begin - 2] == ':';
      RefInfo& info = seen[token];
      if (info.first_line == 0) info.first_line = static_cast<int>(i + 1);
      if (!member && !qualified) info.has_free = true;
    }
  }
  refs->reserve(seen.size());
  for (const auto& kv : seen) {
    SymbolRef r;
    r.name = kv.first;
    r.line = kv.second.first_line;
    r.member_only = !kv.second.has_free;
    refs->push_back(std::move(r));
  }
}

void ExtractSuppressions(const std::vector<std::string>& raw_lines,
                         std::vector<SuppressDirective>* out) {
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& raw = raw_lines[i];
    size_t pos = 0;
    while ((pos = raw.find("NOLINT", pos)) != std::string::npos) {
      size_t after = pos + 6;
      bool next_line = false;
      if (raw.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
        next_line = true;
        after = pos + 14;
      } else if (after < raw.size() && raw[after] == 'N') {
        // Prefix of NOLINTNEXTLINE that failed to match above (defensive).
        ++pos;
        continue;
      }
      SuppressDirective d;
      d.line = static_cast<int>(i + 1);
      d.next_line = next_line;
      if (after < raw.size() && raw[after] == '(') {
        const size_t close = raw.find(')', after);
        const std::string list = raw.substr(
            after + 1, close == std::string::npos ? std::string::npos
                                                  : close - after - 1);
        // Rule names contain '-', which identifier scanning splits on, so
        // split the list on commas instead, trimming spaces.
        size_t begin = 0;
        while (begin <= list.size()) {
          size_t comma = list.find(',', begin);
          if (comma == std::string::npos) comma = list.size();
          std::string item = list.substr(begin, comma - begin);
          while (!item.empty() && item.front() == ' ') item.erase(0, 1);
          while (!item.empty() && item.back() == ' ') item.pop_back();
          if (!item.empty()) d.rules.push_back(item);
          begin = comma + 1;
        }
        d.bare = d.rules.empty();
      } else {
        d.bare = true;
      }
      out->push_back(std::move(d));
      pos = after;
    }
  }
}

}  // namespace

bool FileModel::HasRef(const std::string& name) const {
  return FindRef(name) != nullptr;
}

const SymbolRef* FileModel::FindRef(const std::string& name) const {
  const auto it = std::lower_bound(
      refs.begin(), refs.end(), name,
      [](const SymbolRef& r, const std::string& n) { return r.name < n; });
  if (it == refs.end() || it->name != name) return nullptr;
  return &*it;
}

uint64_t FingerprintContents(const std::string& contents) {
  uint64_t h = 14695981039346656037ULL ^ (kLexerVersion * 0x9e3779b97f4a7c15ULL);
  for (const char c : contents) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

FileModel AnalyzeFile(const std::string& rel, const std::string& contents) {
  FileModel model;
  model.rel = rel;
  model.fingerprint = FingerprintContents(contents);
  model.is_header =
      EndsWith(rel, ".h") || EndsWith(rel, ".hpp") || EndsWith(rel, ".hh");

  const SourceFile source = PrepareSource(rel, contents);

  for (size_t i = 0; i < source.raw_lines.size(); ++i) {
    IncludeDirective inc;
    if (ParseIncludeLine(source.raw_lines[i], &inc.spelled, &inc.angled)) {
      inc.line = static_cast<int>(i + 1);
      model.includes.push_back(std::move(inc));
    }
  }

  std::set<std::string> seen_decls;
  for (size_t i = 0; i < source.code_lines.size(); ++i) {
    const std::string& line = source.code_lines[i];
    const int lineno = static_cast<int>(i + 1);
    // #define NAME
    size_t hash = 0;
    while (hash < line.size() && (line[hash] == ' ' || line[hash] == '\t')) {
      ++hash;
    }
    if (hash < line.size() && line[hash] == '#') {
      size_t p = hash + 1;
      while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) ++p;
      if (line.compare(p, 6, "define") == 0) {
        size_t q = p + 6;
        AddDecl(&model.decls, &seen_decls, NextIdent(line, &q),
                SymbolKind::kMacro, lineno);
      }
      continue;  // other directives declare nothing
    }
    ExtractTypeDecls(line, lineno, &model.decls, &seen_decls);
    ExtractColumnZeroDecls(line, lineno, &model.decls, &seen_decls);
    ExtractIndentedMemberDecls(line, lineno, &model.decls, &seen_decls);
  }

  // Ad-hoc sigma: a GaussianMechanism constructed from a numeric literal.
  for (size_t i = 0; i < source.code_lines.size() &&
                     model.gaussian_literal_line == 0;
       ++i) {
    const std::string& line = source.code_lines[i];
    size_t pos = 0;
    while ((pos = line.find("GaussianMechanism", pos)) != std::string::npos) {
      const size_t end = pos + 17;
      const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
      if (!left_ok || (end < line.size() && IsIdentChar(line[end]))) {
        pos = end;
        continue;
      }
      size_t q = end;
      while (q < line.size() && line[q] == ' ') ++q;
      // Optional variable name: `GaussianMechanism mech(...)`.
      while (q < line.size() && IsIdentChar(line[q])) ++q;
      while (q < line.size() && line[q] == ' ') ++q;
      if (q < line.size() && (line[q] == '(' || line[q] == '{')) {
        ++q;
        while (q < line.size() && line[q] == ' ') ++q;
        if (q < line.size() &&
            (std::isdigit(static_cast<unsigned char>(line[q])) != 0 ||
             (line[q] == '.' && q + 1 < line.size() &&
              std::isdigit(static_cast<unsigned char>(line[q + 1])) != 0))) {
          model.gaussian_literal_line = static_cast<int>(i + 1);
          break;
        }
      }
      pos = end;
    }
  }

  ExtractRefs(source.code_lines, &model.refs);
  ExtractSuppressions(source.raw_lines, &model.suppressions);
  LintFile(source, {}, &model.findings);
  return model;
}

bool IsSuppressedInModel(const FileModel& model, const std::string& rule,
                         int line) {
  for (const SuppressDirective& d : model.suppressions) {
    const bool covers_line =
        d.next_line ? (d.line == line - 1) : (d.line == line);
    if (!covers_line) continue;
    if (d.bare) return true;
    for (const std::string& r : d.rules) {
      if (r == rule) return true;
    }
  }
  return false;
}

}  // namespace lint
}  // namespace dpaudit
