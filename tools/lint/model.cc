#include "tools/lint/model.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace dpaudit {
namespace lint {
namespace {

bool PrefixMatches(const std::string& rel, const std::string& prefix) {
  if (rel == prefix) return true;
  if (!StartsWith(rel, prefix)) return false;
  // "src/util" matches "src/util/..." and "src/util.h"-style stems are not
  // a thing in this tree; require a path or extension boundary.
  const char next = rel[prefix.size()];
  return next == '/' || next == '.' || prefix.back() == '/' ||
         prefix.back() == '.';
}

void EmitGraph(const TreeModel& tree, size_t file_idx, int line,
               const char* rule, std::string message,
               std::vector<Finding>* out) {
  Finding f;
  f.file = tree.files[file_idx].rel;
  f.line = line;
  f.rule = rule;
  f.message = std::move(message);
  out->push_back(std::move(f));
}

// ---------------------------------------------------------------------------
// dpaudit-layering: the allowed-edge matrix in tools/lint/layers.txt is the
// architecture; any include edge it does not permit is a finding. The
// `restrict` directives additionally pin sensitive headers (the privacy
// ledger) to their designated bridge files, so "core/ reaches into the
// ledger outside ledger_bridge" is caught even though core -> obs is a
// legal layer edge.

void CheckLayering(const TreeModel& tree, std::vector<Finding>* out) {
  const LayerConfig& config = tree.layers;
  if (config.layers.empty() && config.restrictions.empty()) return;
  for (size_t i = 0; i < tree.files.size(); ++i) {
    const FileModel& from = tree.files[i];
    for (const TreeModel::Edge& edge : tree.edges[i]) {
      const FileModel& to = tree.files[edge.target];
      for (const LayerConfig::Restriction& r : config.restrictions) {
        if (!PrefixMatches(to.rel, r.target_prefix)) continue;
        bool ok = false;
        for (const std::string& allowed : r.allowed_prefixes) {
          if (PrefixMatches(from.rel, allowed)) {
            ok = true;
            break;
          }
        }
        if (!ok) {
          EmitGraph(tree, i, edge.line, "dpaudit-layering",
                    "restricted header '" + to.rel +
                        "' may only be included from its designated "
                        "bridge files (see 'restrict " +
                        r.target_prefix + "' in " + config.origin + ")",
                    out);
        }
      }
      const LayerConfig::Layer* lf = config.LayerOf(from.rel);
      const LayerConfig::Layer* lt = config.LayerOf(to.rel);
      if (lf == nullptr || lt == nullptr || lf == lt) continue;
      bool ok = false;
      const auto it = config.allowed.find(lf->name);
      if (it != config.allowed.end()) {
        for (const std::string& t : it->second) {
          if (t == "*" || t == lt->name) {
            ok = true;
            break;
          }
        }
      }
      if (!ok) {
        EmitGraph(tree, i, edge.line, "dpaudit-layering",
                  "layer '" + lf->name + "' may not include layer '" +
                      lt->name + "' ('" + to.rel +
                      "'); amend the allowed-edge matrix in " +
                      config.origin + " only with an architectural reason",
                  out);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// dpaudit-include-cycle: a cycle in the include graph means no topological
// build order exists and the guard-protected result depends on who is
// included first — always a latent bug. DFS with an explicit stack; each
// cycle is reported once, anchored at its lexicographically smallest file.

void CheckIncludeCycle(const TreeModel& tree, std::vector<Finding>* out) {
  const size_t n = tree.files.size();
  std::vector<int> color(n, 0);  // 0 white, 1 on stack, 2 done
  std::vector<size_t> stack;
  std::set<std::string> reported;

  // Recursive lambda via explicit frames to survive deep include chains.
  struct Frame {
    size_t node;
    size_t next_edge;
  };
  for (size_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    std::vector<Frame> frames;
    frames.push_back({root, 0});
    color[root] = 1;
    stack.push_back(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next_edge < tree.edges[f.node].size()) {
        const TreeModel::Edge& edge = tree.edges[f.node][f.next_edge++];
        const size_t to = edge.target;
        if (color[to] == 0) {
          color[to] = 1;
          stack.push_back(to);
          frames.push_back({to, 0});
        } else if (color[to] == 1) {
          // Found a cycle: stack suffix from `to` to current node.
          std::vector<size_t> cycle;
          for (size_t j = stack.size(); j-- > 0;) {
            cycle.push_back(stack[j]);
            if (stack[j] == to) break;
          }
          std::reverse(cycle.begin(), cycle.end());
          // Canonicalize: rotate so the smallest rel path leads.
          size_t best = 0;
          for (size_t j = 1; j < cycle.size(); ++j) {
            if (tree.files[cycle[j]].rel < tree.files[cycle[best]].rel) {
              best = j;
            }
          }
          std::rotate(cycle.begin(),
                      cycle.begin() + static_cast<long>(best), cycle.end());
          std::string key, path;
          for (const size_t idx : cycle) {
            key += tree.files[idx].rel + "|";
            path += tree.files[idx].rel + " -> ";
          }
          path += tree.files[cycle[0]].rel;
          if (reported.insert(key).second) {
            // Anchor at the include line in the first cycle file that
            // points to the second.
            const size_t head = cycle[0];
            const size_t next = cycle.size() > 1 ? cycle[1] : cycle[0];
            int line = 1;
            for (const TreeModel::Edge& e : tree.edges[head]) {
              if (e.target == next) {
                line = e.line;
                break;
              }
            }
            EmitGraph(tree, head, line, "dpaudit-include-cycle",
                      "include cycle: " + path +
                          "; break it with a forward declaration or by "
                          "moving the shared types into a lower header",
                      out);
          }
        }
      } else {
        color[f.node] = 2;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// dpaudit-unused-include / dpaudit-missing-include: IWYU-lite over the
// symbol xref. `unused` = a direct repo include none of whose declared
// symbols the includer references. `missing` = a referenced symbol that is
// declared in exactly one repo header the referencing file does not include
// directly (it compiles only through a transitive include — exactly the
// dependency that silently breaks under refactoring). Both err quiet: files
// with no extractable declarations are skipped, ambiguous symbols are
// skipped, and member accesses never count as references.

bool SameStem(const std::string& a, const std::string& b) {
  const auto stem = [](const std::string& path) {
    const size_t dot = path.find_last_of('.');
    return dot == std::string::npos ? path : path.substr(0, dot);
  };
  return stem(a) == stem(b);
}

void CheckUnusedInclude(const TreeModel& tree, std::vector<Finding>* out) {
  for (size_t i = 0; i < tree.files.size(); ++i) {
    const FileModel& from = tree.files[i];
    for (const TreeModel::Edge& edge : tree.edges[i]) {
      const FileModel& to = tree.files[edge.target];
      if (IsPrimaryInclude(edge.spelled, from.rel)) continue;
      if (SameStem(from.rel, to.rel)) continue;  // foo.h <-> foo.cc pair
      if (to.decls.empty()) continue;            // nothing to judge by
      bool used = false;
      for (const SymbolDecl& d : to.decls) {
        if (from.HasRef(d.name)) {
          used = true;
          break;
        }
      }
      if (!used) {
        EmitGraph(tree, i, edge.line, "dpaudit-unused-include",
                  "include of '" + to.rel + "' appears unused (none of its " +
                      std::to_string(to.decls.size()) +
                      " declared symbols are referenced); remove it, or "
                      "keep it with // NOLINT(dpaudit-unused-include) and a "
                      "reason",
                  out);
      }
    }
  }
}

void CheckMissingInclude(const TreeModel& tree, std::vector<Finding>* out) {
  // name -> header indices declaring it (types, functions, macros).
  std::map<std::string, std::vector<size_t>> declarers;
  for (size_t i = 0; i < tree.files.size(); ++i) {
    const FileModel& f = tree.files[i];
    if (!f.is_header) continue;
    for (const SymbolDecl& d : f.decls) {
      if (d.kind == SymbolKind::kVariable) continue;
      std::vector<size_t>& v = declarers[d.name];
      if (v.empty() || v.back() != i) v.push_back(i);
    }
  }
  for (size_t i = 0; i < tree.files.size(); ++i) {
    const FileModel& from = tree.files[i];
    // A symbol is satisfied by a direct include or by one hop through a
    // direct include's own includes (a header's immediate includes are part
    // of its contract here — experiment.h exporting Dataset is deliberate).
    // Only deeper, genuinely accidental transitive reliance is flagged.
    std::set<size_t> direct;
    for (const TreeModel::Edge& edge : tree.edges[i]) {
      direct.insert(edge.target);
      for (const TreeModel::Edge& hop : tree.edges[edge.target]) {
        direct.insert(hop.target);
      }
    }
    std::set<std::string> own;
    for (const SymbolDecl& d : from.decls) own.insert(d.name);
    for (const SymbolRef& ref : from.refs) {
      if (ref.member_only || ref.name.size() < 3) continue;
      if (own.count(ref.name) != 0) continue;
      const auto it = declarers.find(ref.name);
      if (it == declarers.end()) continue;
      // Unique declaring header, not this file, not directly included.
      std::vector<size_t> others;
      for (const size_t h : it->second) {
        if (h != i) others.push_back(h);
      }
      if (others.size() != 1) continue;
      const size_t h = others[0];
      if (direct.count(h) != 0) continue;
      if (SameStem(from.rel, tree.files[h].rel)) continue;
      // A same-spelled declaration in anything directly included (e.g. a
      // member `Cell(...)` declared in this TU's own header) means the
      // reference resolves locally, not through `h`.
      bool shadowed = false;
      for (const size_t d : direct) {
        for (const SymbolDecl& dd : tree.files[d].decls) {
          if (dd.name == ref.name) {
            shadowed = true;
            break;
          }
        }
        if (shadowed) break;
      }
      if (shadowed) continue;
      EmitGraph(tree, i, ref.line, "dpaudit-missing-include",
                "'" + ref.name + "' is declared in '" + tree.files[h].rel +
                    "', which this file does not include directly — the "
                    "reference compiles only through a transitive include; "
                    "add the #include",
                out);
    }
  }
}

// ---------------------------------------------------------------------------
// dpaudit-mechanism-flow: the paper's guarantee chain is clip -> calibrated
// sigma -> Gaussian perturbation; an implementation that perturbs without
// sitting downstream of the clipping/sensitivity helpers (the exact failure
// mode of "Debugging Differential Privacy") claims an eps it does not
// provide. Three checks: (a) a TU outside dp/ that invokes the mechanism
// (Perturb/PerturbScalar/LogDensityPair) must also reference a
// clip/sensitivity helper harvested from util/, core/, dp/, or nn/ (e.g.
// math_util, neighbor_sums, sensitivity, per-example clipping); (b) raw std::normal_distribution is banned outside dp/
// and util/random (noise flows through the mechanism, never ad hoc); (c) a
// GaussianMechanism constructed from a literal sigma outside dp/ bypasses
// calibration.

const char* const kMechanismEntryPoints[] = {"Perturb", "PerturbScalar",
                                             "LogDensityPair"};

bool NameIsClipHelper(const std::string& name) {
  return name.find("Clip") != std::string::npos ||
         name.find("Sensitivity") != std::string::npos || name == "L2Norm";
}

void CheckMechanismFlow(const TreeModel& tree, std::vector<Finding>* out) {
  // Helper symbols, harvested from the model so the rule follows renames.
  std::set<std::string> helpers;
  for (const FileModel& f : tree.files) {
    if (!StartsWith(f.rel, "src/util/") && !StartsWith(f.rel, "src/core/") &&
        !StartsWith(f.rel, "src/dp/") && !StartsWith(f.rel, "src/nn/")) {
      continue;
    }
    for (const SymbolDecl& d : f.decls) {
      if (NameIsClipHelper(d.name)) helpers.insert(d.name);
    }
  }
  for (size_t i = 0; i < tree.files.size(); ++i) {
    const FileModel& f = tree.files[i];
    if (!StartsWith(f.rel, "src/")) continue;
    const bool in_dp = StartsWith(f.rel, "src/dp/");
    // (b) raw normal distributions.
    if (!in_dp && !StartsWith(f.rel, "src/util/random.")) {
      const SymbolRef* raw = f.FindRef("normal_distribution");
      if (raw != nullptr) {
        EmitGraph(tree, i, raw->line, "dpaudit-mechanism-flow",
                  "raw std::normal_distribution outside dp/ and "
                  "util/random; DP noise must flow through "
                  "GaussianMechanism so sigma stays tied to the calibrated "
                  "sensitivity",
                  out);
      }
    }
    if (in_dp) continue;
    // (c) literal sigma.
    if (f.gaussian_literal_line != 0) {
      EmitGraph(tree, i, f.gaussian_literal_line, "dpaudit-mechanism-flow",
                "GaussianMechanism constructed from a literal sigma outside "
                "dp/; sigma must come from calibration "
                "(CalibrateGaussianSigma) or a config, never a hard-coded "
                "constant",
                out);
    }
    // (a) mechanism invocation without clip/sensitivity context.
    if (f.is_header || helpers.empty()) continue;
    const SymbolRef* mech = nullptr;
    for (const char* name : kMechanismEntryPoints) {
      const SymbolRef* r = f.FindRef(name);
      if (r != nullptr && (mech == nullptr || r->line < mech->line)) {
        mech = r;
      }
    }
    if (mech == nullptr) continue;
    bool has_helper = false;
    for (const std::string& h : helpers) {
      if (f.HasRef(h)) {
        has_helper = true;
        break;
      }
    }
    if (!has_helper) {
      EmitGraph(
          tree, i, mech->line, "dpaudit-mechanism-flow",
          "this TU invokes the Gaussian mechanism but references no "
          "clip/sensitivity helper (util/math_util, core/neighbor_sums, "
                "nn per-example clipping, "
          "dp/sensitivity); a perturbation site that is not downstream of "
          "clipping voids the eps claim — plumb the clipped-sum path "
          "through, or NOLINT with a justification",
          out);
    }
  }
}

}  // namespace

const LayerConfig::Layer* LayerConfig::LayerOf(const std::string& rel) const {
  const Layer* best = nullptr;
  size_t best_len = 0;
  for (const Layer& layer : layers) {
    for (const std::string& prefix : layer.prefixes) {
      if (PrefixMatches(rel, prefix) && prefix.size() >= best_len) {
        best = &layer;
        best_len = prefix.size();
      }
    }
  }
  return best;
}

bool ParseLayerConfig(const std::string& contents, const std::string& origin,
                      LayerConfig* config, std::string* error) {
  config->layers.clear();
  config->allowed.clear();
  config->restrictions.clear();
  config->origin = origin;
  std::istringstream in(contents);
  std::string line;
  int lineno = 0;
  std::set<std::string> layer_names;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive)) continue;
    if (directive == "layer") {
      LayerConfig::Layer layer;
      fields >> layer.name;
      std::string prefix;
      while (fields >> prefix) layer.prefixes.push_back(prefix);
      if (layer.name.empty() || layer.prefixes.empty()) {
        *error = origin + ":" + std::to_string(lineno) +
                 ": 'layer' needs a name and at least one path prefix";
        return false;
      }
      if (!layer_names.insert(layer.name).second) {
        *error = origin + ":" + std::to_string(lineno) +
                 ": duplicate layer '" + layer.name + "'";
        return false;
      }
      config->layers.push_back(std::move(layer));
    } else if (directive == "allow") {
      std::string from;
      fields >> from;
      std::vector<std::string> tos;
      std::string to;
      while (fields >> to) tos.push_back(to);
      if (from.empty() || tos.empty()) {
        *error = origin + ":" + std::to_string(lineno) +
                 ": 'allow' needs a source layer and at least one target";
        return false;
      }
      if (layer_names.count(from) == 0) {
        *error = origin + ":" + std::to_string(lineno) +
                 ": 'allow' references undeclared layer '" + from + "'";
        return false;
      }
      for (const std::string& t : tos) {
        if (t != "*" && layer_names.count(t) == 0) {
          *error = origin + ":" + std::to_string(lineno) +
                   ": 'allow' references undeclared layer '" + t + "'";
          return false;
        }
        config->allowed[from].push_back(t);
      }
    } else if (directive == "restrict") {
      LayerConfig::Restriction r;
      r.line = lineno;
      fields >> r.target_prefix;
      std::string prefix;
      while (fields >> prefix) r.allowed_prefixes.push_back(prefix);
      if (r.target_prefix.empty() || r.allowed_prefixes.empty()) {
        *error = origin + ":" + std::to_string(lineno) +
                 ": 'restrict' needs a target prefix and at least one "
                 "allowed includer prefix";
        return false;
      }
      config->restrictions.push_back(std::move(r));
    } else {
      *error = origin + ":" + std::to_string(lineno) +
               ": unknown directive '" + directive + "'";
      return false;
    }
  }
  return true;
}

bool LoadLayerConfig(const std::string& path, LayerConfig* config,
                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read layer config " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseLayerConfig(buffer.str(), path, config, error);
}

const FileModel* TreeModel::Find(const std::string& rel) const {
  const size_t idx = IndexOf(rel);
  return idx < files.size() ? &files[idx] : nullptr;
}

size_t TreeModel::IndexOf(const std::string& rel) const {
  const auto it = std::lower_bound(
      files.begin(), files.end(), rel,
      [](const FileModel& f, const std::string& r) { return f.rel < r; });
  if (it == files.end() || it->rel != rel) return files.size();
  return static_cast<size_t>(it - files.begin());
}

size_t TreeModel::ResolveInclude(const std::string& spelled) const {
  // src/ files spell includes relative to src/; tools, tests, and bench
  // spell them from the repo root. Try both.
  size_t idx = IndexOf("src/" + spelled);
  if (idx < files.size()) return idx;
  return IndexOf(spelled);
}

TreeModel BuildTreeModel(std::vector<FileModel> files, LayerConfig layers) {
  TreeModel tree;
  tree.files = std::move(files);
  tree.layers = std::move(layers);
  std::sort(tree.files.begin(), tree.files.end(),
            [](const FileModel& a, const FileModel& b) {
              return a.rel < b.rel;
            });
  tree.edges.resize(tree.files.size());
  for (size_t i = 0; i < tree.files.size(); ++i) {
    for (const IncludeDirective& inc : tree.files[i].includes) {
      if (inc.angled) continue;  // system headers are not part of the model
      const size_t target = tree.ResolveInclude(inc.spelled);
      if (target >= tree.files.size() || target == i) continue;
      TreeModel::Edge edge;
      edge.target = target;
      edge.line = inc.line;
      edge.spelled = inc.spelled;
      tree.edges[i].push_back(std::move(edge));
    }
  }
  return tree;
}

const std::vector<GraphRule>& AllGraphRules() {
  static const std::vector<GraphRule> kRules = {
      {"dpaudit-include-cycle",
       "no cycles in the include graph; break them with forward "
       "declarations or a lower shared header",
       &CheckIncludeCycle},
      {"dpaudit-layering",
       "include edges must satisfy the allowed-edge matrix in "
       "tools/lint/layers.txt (plus 'restrict' bridge pins)",
       &CheckLayering},
      {"dpaudit-mechanism-flow",
       "mechanism call sites sit downstream of clip/sensitivity helpers; "
       "no raw normal_distribution or literal sigma outside dp/",
       &CheckMechanismFlow},
      {"dpaudit-missing-include",
       "referenced repo symbols must be included directly, not through "
       "transitive includes (IWYU-lite)",
       &CheckMissingInclude},
      {"dpaudit-unused-include",
       "no direct includes whose declared symbols are never referenced "
       "(IWYU-lite)",
       &CheckUnusedInclude},
  };
  return kRules;
}

void RunGraphRules(const TreeModel& tree, const std::vector<std::string>& rules,
                   std::vector<Finding>* out) {
  std::vector<Finding> found;
  for (const GraphRule& rule : AllGraphRules()) {
    if (!rules.empty() &&
        std::find(rules.begin(), rules.end(), rule.name) == rules.end()) {
      continue;
    }
    rule.check(tree, &found);
  }
  for (Finding& f : found) {
    const FileModel* model = tree.Find(f.file);
    if (model != nullptr && IsSuppressedInModel(*model, f.rule, f.line)) {
      continue;
    }
    out->push_back(std::move(f));
  }
  SortFindings(out);
}

bool IsKnownRule(const std::string& name) {
  for (const Rule& r : AllRules()) {
    if (r.name == name) return true;
  }
  for (const GraphRule& r : AllGraphRules()) {
    if (r.name == name) return true;
  }
  return false;
}

void WriteSarif(const std::vector<Finding>& findings, std::ostream& out) {
  out << "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\","
         "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
         "\"name\":\"dpaudit_lint\","
         "\"informationUri\":\"https://github.com/\",\"rules\":[";
  bool first = true;
  const auto rule_entry = [&](const std::string& name,
                              const std::string& summary) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":\"" << JsonEscape(name)
        << "\",\"shortDescription\":{\"text\":\"" << JsonEscape(summary)
        << "\"}}";
  };
  for (const Rule& r : AllRules()) rule_entry(r.name, r.summary);
  for (const GraphRule& r : AllGraphRules()) rule_entry(r.name, r.summary);
  out << "]}},\"results\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out << ",";
    out << "{\"ruleId\":\"" << JsonEscape(f.rule)
        << "\",\"level\":\"error\",\"message\":{\"text\":\""
        << JsonEscape(f.message)
        << "\"},\"locations\":[{\"physicalLocation\":{"
           "\"artifactLocation\":{\"uri\":\""
        << JsonEscape(f.file)
        << "\",\"uriBaseId\":\"%SRCROOT%\"},\"region\":{\"startLine\":"
        << (f.line > 0 ? f.line : 1) << "}}}]}";
  }
  out << "]}]}\n";
}

}  // namespace lint
}  // namespace dpaudit
