#include "tools/lint/cache.h"
#include "tools/lint/lint.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace dpaudit {
namespace lint {
namespace {

constexpr const char kMagic[] = "dpaudit-lint-cache v1";

std::string NextLine(const std::string& text, size_t* pos) {
  if (*pos >= text.size()) return std::string();
  size_t end = text.find('\n', *pos);
  if (end == std::string::npos) end = text.size();
  std::string line = text.substr(*pos, end - *pos);
  *pos = end + 1;
  return line;
}

/// "key rest" split at the first space.
bool SplitField(const std::string& line, std::string* key,
                std::string* rest) {
  const size_t space = line.find(' ');
  if (space == std::string::npos) {
    *key = line;
    rest->clear();
    return !key->empty();
  }
  *key = line.substr(0, space);
  *rest = line.substr(space + 1);
  return true;
}

}  // namespace

void SerializeFileModel(const FileModel& model, std::string* out) {
  char buf[64];
  *out += "file " + model.rel + "\n";
  std::snprintf(buf, sizeof(buf), "fp %016llx\n",
                static_cast<unsigned long long>(model.fingerprint));
  *out += buf;
  *out += model.is_header ? "hdr 1\n" : "hdr 0\n";
  if (model.gaussian_literal_line != 0) {
    *out += "gl " + std::to_string(model.gaussian_literal_line) + "\n";
  }
  for (const IncludeDirective& inc : model.includes) {
    *out += "inc " + std::to_string(inc.line) + (inc.angled ? " 1 " : " 0 ") +
            inc.spelled + "\n";
  }
  for (const SymbolDecl& d : model.decls) {
    *out += "decl " + std::to_string(static_cast<int>(d.kind)) + " " +
            std::to_string(d.line) + " " + d.name + "\n";
  }
  // Refs are the bulky part; pack them onto one line as name:line:member.
  if (!model.refs.empty()) {
    *out += "refs";
    for (const SymbolRef& r : model.refs) {
      *out += " " + r.name + ":" + std::to_string(r.line) +
              (r.member_only ? ":1" : ":0");
    }
    *out += "\n";
  }
  for (const SuppressDirective& d : model.suppressions) {
    *out += "sup " + std::to_string(d.line) + (d.next_line ? " 1" : " 0") +
            (d.bare ? " 1" : " 0");
    for (size_t i = 0; i < d.rules.size(); ++i) {
      *out += (i == 0 ? " " : ",") + d.rules[i];
    }
    *out += "\n";
  }
  for (const Finding& f : model.findings) {
    // The message is free text but never contains a newline.
    *out += "find " + std::to_string(f.line) + " " + f.rule + " " +
            f.message + "\n";
  }
  *out += "end\n";
}

bool DeserializeFileModel(const std::string& text, size_t* pos,
                          FileModel* model) {
  *model = FileModel();
  std::string key, rest;
  if (!SplitField(NextLine(text, pos), &key, &rest) || key != "file" ||
      rest.empty()) {
    return false;
  }
  model->rel = rest;
  while (*pos < text.size()) {
    const std::string line = NextLine(text, pos);
    if (line == "end") return true;
    if (!SplitField(line, &key, &rest)) return false;
    if (key == "fp") {
      model->fingerprint = std::strtoull(rest.c_str(), nullptr, 16);
    } else if (key == "hdr") {
      model->is_header = rest == "1";
    } else if (key == "gl") {
      model->gaussian_literal_line =
          static_cast<int>(std::strtol(rest.c_str(), nullptr, 10));
    } else if (key == "inc") {
      IncludeDirective inc;
      std::istringstream fields(rest);
      int angled = 0;
      fields >> inc.line >> angled;
      std::getline(fields >> std::ws, inc.spelled);
      inc.angled = angled != 0;
      if (inc.spelled.empty()) return false;
      model->includes.push_back(std::move(inc));
    } else if (key == "decl") {
      SymbolDecl d;
      std::istringstream fields(rest);
      int kind = 0;
      fields >> kind >> d.line;
      std::getline(fields >> std::ws, d.name);
      if (d.name.empty() || kind < 0 || kind > 3) return false;
      d.kind = static_cast<SymbolKind>(kind);
      model->decls.push_back(std::move(d));
    } else if (key == "refs") {
      std::istringstream fields(rest);
      std::string item;
      while (fields >> item) {
        const size_t c2 = item.rfind(':');
        const size_t c1 =
            c2 == std::string::npos ? std::string::npos
                                    : item.rfind(':', c2 - 1);
        if (c1 == std::string::npos || c1 == 0) return false;
        SymbolRef r;
        r.name = item.substr(0, c1);
        r.line = static_cast<int>(
            std::strtol(item.substr(c1 + 1, c2 - c1 - 1).c_str(), nullptr,
                        10));
        r.member_only = item.substr(c2 + 1) == "1";
        model->refs.push_back(std::move(r));
      }
    } else if (key == "sup") {
      SuppressDirective d;
      std::istringstream fields(rest);
      int next = 0, bare = 0;
      fields >> d.line >> next >> bare;
      d.next_line = next != 0;
      d.bare = bare != 0;
      std::string list;
      if (fields >> list) {
        size_t begin = 0;
        while (begin <= list.size()) {
          size_t comma = list.find(',', begin);
          if (comma == std::string::npos) comma = list.size();
          const std::string item = list.substr(begin, comma - begin);
          if (!item.empty()) d.rules.push_back(item);
          begin = comma + 1;
        }
      }
      model->suppressions.push_back(std::move(d));
    } else if (key == "find") {
      Finding f;
      f.file = model->rel;
      const size_t s1 = rest.find(' ');
      const size_t s2 = rest.find(' ', s1 + 1);
      if (s1 == std::string::npos || s2 == std::string::npos) return false;
      f.line = static_cast<int>(
          std::strtol(rest.substr(0, s1).c_str(), nullptr, 10));
      f.rule = rest.substr(s1 + 1, s2 - s1 - 1);
      f.message = rest.substr(s2 + 1);
      model->findings.push_back(std::move(f));
    } else {
      return false;  // unknown record: treat the whole cache as corrupt
    }
  }
  return false;  // ran out of input before "end"
}

ModelCache ModelCache::Load(const std::string& path) {
  ModelCache cache;
  if (path.empty()) return cache;
  std::ifstream in(path, std::ios::binary);
  if (!in) return cache;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  size_t pos = 0;
  if (NextLine(text, &pos) != kMagic) return cache;
  while (pos < text.size()) {
    FileModel model;
    if (!DeserializeFileModel(text, &pos, &model)) {
      // Corrupt tail: keep nothing — a partial cache risks stale findings.
      cache.entries_.clear();
      return cache;
    }
    const std::string rel = model.rel;
    cache.entries_[rel] = std::move(model);
  }
  return cache;
}

const FileModel* ModelCache::Lookup(const std::string& rel,
                                    uint64_t fingerprint) const {
  const auto it = entries_.find(rel);
  if (it == entries_.end() || it->second.fingerprint != fingerprint) {
    return nullptr;
  }
  return &it->second;
}

bool ModelCache::Store(const std::vector<FileModel>& models,
                       const std::string& path) {
  if (path.empty()) return true;
  entries_.clear();
  std::string out = kMagic;
  out += "\n";
  for (const FileModel& model : models) {
    SerializeFileModel(model, &out);
    entries_[model.rel] = model;
  }
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << out;
  return file.good();
}

}  // namespace lint
}  // namespace dpaudit
