// dpaudit_lint — tree-wide static analysis for dpaudit's repo invariants.
// Two passes: per-file lexical rules over a token model (parallel, cached
// by content fingerprint), then cross-TU graph rules over the include graph
// and symbol xref (layering, cycles, include hygiene, DP mechanism flow).
// See tools/lint/lint.h, tools/lint/model.h, and DESIGN.md §14.
//
// Usage:
//   dpaudit_lint [--root=DIR] [--format=text|json|sarif] [--rule=NAME ...]
//                [--cache=FILE] [--no-cache] [--layers=FILE] [--no-graph]
//                [--fix] [--stats] [--list-rules] [paths...]
//
// Paths (files or directories) are resolved against --root; with none given
// the default trees src/ bench/ tools/ tests/ examples/ are scanned. The
// pass-1 cache defaults to $DPAUDIT_LINT_CACHE when set. Exit status: 0
// clean, 1 findings, 2 usage or I/O error.

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "tools/lint/driver.h"
#include "tools/lint/lint.h"
#include "tools/lint/model.h"

namespace {

namespace fs = std::filesystem;

int Usage(std::ostream& out, int code) {
  out << "usage: dpaudit_lint [--root=DIR] [--format=text|json|sarif]\n"
         "                    [--rule=NAME ...] [--cache=FILE] [--no-cache]\n"
         "                    [--layers=FILE] [--no-graph] [--fix]\n"
         "                    [--stats] [--list-rules] [paths...]\n"
         "\n"
         "Lints C++ sources against dpaudit's repo invariants: per-file\n"
         "lexical rules plus cross-TU graph rules (include-graph layering,\n"
         "cycles, IWYU-lite hygiene, DP mechanism flow). With no paths,\n"
         "scans src/ bench/ tools/ tests/ examples/ under --root (default:\n"
         "current directory). --fix rewrites include guards and include\n"
         "order in place (idempotent). --cache points at the pass-1\n"
         "fingerprint cache ($DPAUDIT_LINT_CACHE by default); warm runs\n"
         "re-lex only changed files. Suppress one line with\n"
         "// NOLINT(dpaudit-<rule>); see --list-rules for rule names.\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  dpaudit::lint::TreeLintOptions options;
  std::string format = "text";
  std::vector<std::string> paths;
  bool list_rules = false;
  bool stats = false;
  bool no_cache = false;
  // The linter cannot depend on core/, so this one knob reads the
  // environment directly.
  if (const char* env = std::getenv("DPAUDIT_LINT_CACHE")) {  // NOLINT(dpaudit-raw-getenv)
    options.cache_path = env;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Accepts both --flag=value and --flag value.
    const auto value = [&](const std::string& flag) -> std::string {
      if (arg.size() > flag.size() + 1 && arg[flag.size()] == '=') {
        return arg.substr(flag.size() + 1);
      }
      if (arg == flag && i + 1 < argc) return argv[++i];
      std::cerr << "dpaudit_lint: " << flag << " needs a value\n";
      std::exit(2);
    };
    if (arg == "--help" || arg == "-h") {
      return Usage(std::cout, 0);
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--fix") {
      options.fix = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--no-graph") {
      options.graph_rules = false;
    } else if (arg.rfind("--root", 0) == 0) {
      options.root = value("--root");
    } else if (arg.rfind("--format", 0) == 0) {
      format = value("--format");
    } else if (arg.rfind("--rule", 0) == 0) {
      options.rules.push_back(value("--rule"));
    } else if (arg.rfind("--cache", 0) == 0) {
      options.cache_path = value("--cache");
    } else if (arg.rfind("--layers", 0) == 0) {
      options.layers_path = value("--layers");
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dpaudit_lint: unknown flag " << arg << "\n";
      return Usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (no_cache) options.cache_path.clear();
  if (format != "text" && format != "json" && format != "sarif") {
    std::cerr << "dpaudit_lint: --format must be text, json, or sarif\n";
    return 2;
  }
  if (list_rules) {
    for (const dpaudit::lint::Rule& rule : dpaudit::lint::AllRules()) {
      std::cout << rule.name << ": " << rule.summary << "\n";
    }
    for (const dpaudit::lint::GraphRule& rule :
         dpaudit::lint::AllGraphRules()) {
      std::cout << rule.name << " (graph): " << rule.summary << "\n";
    }
    return 0;
  }
  for (const std::string& rule : options.rules) {
    if (!dpaudit::lint::IsKnownRule(rule)) {
      std::cerr << "dpaudit_lint: unknown rule " << rule
                << " (see --list-rules)\n";
      return 2;
    }
  }

  if (paths.empty()) {
    for (const char* tree : {"src", "bench", "tools", "tests", "examples"}) {
      if (fs::is_directory(fs::path(options.root) / tree)) {
        paths.push_back(tree);
      }
    }
    if (paths.empty()) {
      std::cerr << "dpaudit_lint: no default trees under " << options.root
                << "\n";
      return 2;
    }
  }

  const dpaudit::lint::TreeLintResult result =
      dpaudit::lint::LintTree(paths, options);
  if (!result.errors.empty()) {
    for (const std::string& error : result.errors) {
      std::cerr << "dpaudit_lint: " << error << "\n";
    }
    return 2;
  }
  if (stats) {
    std::cerr << "dpaudit_lint: " << result.files_scanned << " file(s), "
              << result.cache_hits << " cache hit(s), "
              << result.cache_misses << " miss(es)";
    if (options.fix) std::cerr << ", " << result.files_fixed << " fixed";
    std::cerr << "\n";
  }

  if (format == "json") {
    dpaudit::lint::WriteJson(result.findings, result.files_scanned,
                             std::cout);
  } else if (format == "sarif") {
    dpaudit::lint::WriteSarif(result.findings, std::cout);
  } else {
    dpaudit::lint::WriteText(result.findings, std::cout);
    if (!result.findings.empty()) {
      std::cout << result.findings.size() << " finding(s) in "
                << result.files_scanned << " file(s)\n";
    }
  }
  return result.findings.empty() ? 0 : 1;
}
