// dpaudit_lint — repo-specific invariant linter. See tools/lint/lint.h and
// DESIGN.md §10 for what each rule protects.
//
// Usage:
//   dpaudit_lint [--root=DIR] [--format=text|json] [--rule=NAME ...]
//                [--list-rules] [paths...]
//
// Paths (files or directories) are resolved against --root; with none given
// the default trees src/ bench/ tools/ tests/ are scanned. Exit status: 0
// clean, 1 findings, 2 usage or I/O error.

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace {

namespace fs = std::filesystem;

int Usage(std::ostream& out, int code) {
  out << "usage: dpaudit_lint [--root=DIR] [--format=text|json]\n"
         "                    [--rule=NAME ...] [--list-rules] [paths...]\n"
         "\n"
         "Lints C++ sources against dpaudit's repo invariants. With no\n"
         "paths, scans src/ bench/ tools/ tests/ under --root (default:\n"
         "current directory). Suppress one line with\n"
         "// NOLINT(dpaudit-<rule>); see --list-rules for rule names.\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  std::vector<std::string> rules;
  std::vector<std::string> paths;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Accepts both --flag=value and --flag value.
    const auto value = [&](const std::string& flag) -> std::string {
      if (arg.size() > flag.size() + 1 && arg[flag.size()] == '=') {
        return arg.substr(flag.size() + 1);
      }
      if (arg == flag && i + 1 < argc) return argv[++i];
      std::cerr << "dpaudit_lint: " << flag << " needs a value\n";
      std::exit(2);
    };
    if (arg == "--help" || arg == "-h") {
      return Usage(std::cout, 0);
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.rfind("--root", 0) == 0) {
      root = value("--root");
    } else if (arg.rfind("--format", 0) == 0) {
      format = value("--format");
    } else if (arg.rfind("--rule", 0) == 0) {
      rules.push_back(value("--rule"));
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dpaudit_lint: unknown flag " << arg << "\n";
      return Usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (format != "text" && format != "json") {
    std::cerr << "dpaudit_lint: --format must be text or json\n";
    return 2;
  }
  if (list_rules) {
    for (const dpaudit::lint::Rule& rule : dpaudit::lint::AllRules()) {
      std::cout << rule.name << ": " << rule.summary << "\n";
    }
    return 0;
  }
  for (const std::string& rule : rules) {
    bool known = false;
    for (const dpaudit::lint::Rule& r : dpaudit::lint::AllRules()) {
      known = known || r.name == rule;
    }
    if (!known) {
      std::cerr << "dpaudit_lint: unknown rule " << rule
                << " (see --list-rules)\n";
      return 2;
    }
  }

  if (paths.empty()) {
    for (const char* tree : {"src", "bench", "tools", "tests"}) {
      if (fs::is_directory(fs::path(root) / tree)) paths.push_back(tree);
    }
    if (paths.empty()) {
      std::cerr << "dpaudit_lint: no default trees under " << root << "\n";
      return 2;
    }
  }

  std::vector<dpaudit::lint::Finding> findings;
  size_t files_scanned = 0;
  for (const std::string& path : paths) {
    fs::path resolved(path);
    if (resolved.is_relative() && !fs::exists(resolved)) {
      resolved = fs::path(root) / path;
    }
    const std::vector<std::string> files =
        dpaudit::lint::CollectFiles(resolved.string());
    if (files.empty()) {
      std::cerr << "dpaudit_lint: no lintable files under " << path << "\n";
      return 2;
    }
    for (const std::string& file : files) {
      if (!dpaudit::lint::LintPath(file, root, rules, &findings)) {
        std::cerr << "dpaudit_lint: cannot read " << file << "\n";
        return 2;
      }
      ++files_scanned;
    }
  }

  if (format == "json") {
    dpaudit::lint::WriteJson(findings, files_scanned, std::cout);
  } else {
    dpaudit::lint::WriteText(findings, std::cout);
    if (!findings.empty()) {
      std::cout << findings.size() << " finding(s) in " << files_scanned
                << " file(s)\n";
    }
  }
  return findings.empty() ? 0 : 1;
}
