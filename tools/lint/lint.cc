#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace dpaudit {
namespace lint {

bool HasToken(const std::string& line, const std::string& token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

namespace {

namespace fs = std::filesystem;

bool InTree(const std::string& rel, const char* tree) {
  return StartsWith(rel, std::string(tree) + "/");
}

bool IsHeader(const std::string& rel) {
  return EndsWith(rel, ".h") || EndsWith(rel, ".hpp") || EndsWith(rel, ".hh");
}

void Emit(const SourceFile& file, int line, const char* rule,
          std::string message, std::vector<Finding>* out) {
  Finding f;
  f.file = file.rel;
  f.line = line;
  f.rule = rule;
  f.message = std::move(message);
  out->push_back(std::move(f));
}

// ---------------------------------------------------------------------------
// dpaudit-rng: single RNG discipline. Every random draw must flow from
// util/random's Rng (seeded once, split per task); ad-hoc engines make runs
// irreproducible and break the neighbor-world coupling the audit relies on.

constexpr const char* kRngTokens[] = {
    "rand",          "srand",          "rand_r",        "random_device",
    "mt19937",       "mt19937_64",     "minstd_rand",   "minstd_rand0",
    "default_random_engine", "knuth_b", "ranlux24",     "ranlux48",
};

void CheckRng(const SourceFile& file, std::vector<Finding>* out) {
  if (StartsWith(file.rel, "src/util/random.")) return;  // the one home
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    for (const char* token : kRngTokens) {
      if (HasToken(file.code_lines[i], token)) {
        Emit(file, static_cast<int>(i + 1), "dpaudit-rng",
             std::string("ad-hoc RNG '") + token +
                 "'; all randomness must flow from util/random's Rng "
                 "(seeded once, Split() per task) so runs stay reproducible",
             out);
        break;  // one finding per line is enough
      }
    }
  }
}

// ---------------------------------------------------------------------------
// dpaudit-stdout: experiment stdout is a byte-stable artifact (figures are
// diffed against golden output); library code must never write to it.

void CheckStdout(const SourceFile& file, std::vector<Finding>* out) {
  if (!InTree(file.rel, "src")) return;
  constexpr const char* kTokens[] = {"cout", "printf", "puts", "putchar",
                                     "stdout"};
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    for (const char* token : kTokens) {
      if (HasToken(file.code_lines[i], token)) {
        Emit(file, static_cast<int>(i + 1), "dpaudit-stdout",
             std::string("'") + token +
                 "' in library code; results go through io/ writers on "
                 "caller-supplied streams, diagnostics through DPAUDIT_LOG",
             out);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// dpaudit-cerr: diagnostics go through DPAUDIT_LOG (leveled, filterable,
// mirrored into the telemetry JSONL export); raw std::cerr bypasses all of
// that. util/logging is the sink implementation and the one exception.

void CheckCerr(const SourceFile& file, std::vector<Finding>* out) {
  if (!InTree(file.rel, "src")) return;
  if (StartsWith(file.rel, "src/util/logging.")) return;
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    for (const char* token : {"cerr", "clog"}) {
      if (HasToken(file.code_lines[i], token)) {
        Emit(file, static_cast<int>(i + 1), "dpaudit-cerr",
             std::string("direct 'std::") + token +
                 "'; route diagnostics through DPAUDIT_LOG(severity) or, "
                 "for raw multi-line reports, util/logging's RawLogStream()",
             out);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// dpaudit-unordered-float: iterating a std::unordered_{map,set} feeds
// elements in an unspecified order; accumulating floating-point values in
// that order makes results run-to-run nondeterministic (FP addition is not
// associative). Iterate a sorted view instead.

/// Heuristic: last identifier of a declaration-ish fragment, e.g.
/// "std::unordered_map<K, V> counts" -> "counts".
std::string LastIdentifier(const std::string& text) {
  size_t end = text.size();
  while (end > 0 && !IsIdentChar(text[end - 1])) --end;
  size_t begin = end;
  while (begin > 0 && IsIdentChar(text[begin - 1])) --begin;
  return text.substr(begin, end - begin);
}

void CheckUnorderedFloat(const SourceFile& file, std::vector<Finding>* out) {
  if (!InTree(file.rel, "src")) return;
  // Pass 1: names declared with an unordered container type.
  std::set<std::string> unordered_vars;
  for (const std::string& line : file.code_lines) {
    if (line.find("unordered_map") == std::string::npos &&
        line.find("unordered_set") == std::string::npos) {
      continue;
    }
    std::string decl = line;
    for (const char stop : {'=', '{', ';'}) {
      const size_t pos = decl.find(stop);
      if (pos != std::string::npos) decl.resize(pos);
    }
    const std::string name = LastIdentifier(decl);
    if (!name.empty() && name.find("unordered") == std::string::npos) {
      unordered_vars.insert(name);
    }
  }
  // Pass 2: range-for over an unordered container, accumulation inside.
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    if (!HasToken(line, "for")) continue;
    const size_t paren = line.find('(');
    if (paren == std::string::npos) continue;
    // The range-for colon: a ':' that is not part of "::".
    size_t colon = std::string::npos;
    for (size_t p = paren + 1; p < line.size(); ++p) {
      if (line[p] != ':') continue;
      if ((p + 1 < line.size() && line[p + 1] == ':') ||
          (p > 0 && line[p - 1] == ':')) {
        ++p;
        continue;
      }
      colon = p;
      break;
    }
    if (colon == std::string::npos) continue;
    const std::string range_expr = line.substr(colon + 1);
    bool unordered = range_expr.find("unordered_") != std::string::npos;
    if (!unordered) {
      for (const std::string& name : unordered_vars) {
        if (HasToken(range_expr, name)) {
          unordered = true;
          break;
        }
      }
    }
    if (!unordered) continue;
    // Loop body extent: brace-balanced from the for line; if the loop is
    // braceless, just the next line.
    int depth = 0;
    bool saw_brace = false;
    size_t last = std::min(i + 1, file.code_lines.size() - 1);
    for (size_t j = i; j < file.code_lines.size(); ++j) {
      for (const char c : file.code_lines[j]) {
        if (c == '{') {
          ++depth;
          saw_brace = true;
        } else if (c == '}') {
          --depth;
        }
      }
      if (saw_brace && depth <= 0) {
        last = j;
        break;
      }
      if (!saw_brace && j > i) {
        last = j;
        break;
      }
    }
    for (size_t j = i; j <= last && j < file.code_lines.size(); ++j) {
      const std::string& body = file.code_lines[j];
      if (body.find("+=") != std::string::npos ||
          body.find("-=") != std::string::npos ||
          HasToken(body, "accumulate")) {
        Emit(file, static_cast<int>(i + 1), "dpaudit-unordered-float",
             "accumulation over unordered container iteration; the order is "
             "unspecified and floating-point addition is not associative, so "
             "results become nondeterministic — iterate a sorted view",
             out);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// dpaudit-omp: all parallelism goes through util/thread_pool so thread
// counts, nesting budgets, and telemetry span adoption stay centralized.

void CheckOmp(const SourceFile& file, std::vector<Finding>* out) {
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    if (line.find("#pragma") != std::string::npos && HasToken(line, "omp")) {
      Emit(file, static_cast<int>(i + 1), "dpaudit-omp",
           "OpenMP pragma; parallelism goes through util/thread_pool "
           "(deterministic fan-out, nested budgets, telemetry adoption)",
           out);
    }
  }
}

// ---------------------------------------------------------------------------
// dpaudit-raw-getenv: every process knob flows through the RuntimeOptions
// table (core/runtime_options.h) so precedence (flag > env > default),
// validation, and --help stay in one place. A raw getenv is an undocumented
// knob the table and docs/OPERATIONS.md cannot see.

/// Flags `getenv`/`std::getenv`/`secure_getenv` everywhere except the
/// RuntimeOptions implementation itself. The util/env.h accessors are the
/// one sanctioned low-level read path and carry per-line NOLINT markers.
void CheckRawGetenv(const SourceFile& file, std::vector<Finding>* out) {
  if (StartsWith(file.rel, "src/core/runtime_options.")) return;
  constexpr const char* kTokens[] = {"getenv", "secure_getenv"};
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    for (const char* token : kTokens) {
      if (HasToken(file.code_lines[i], token)) {
        Emit(file, static_cast<int>(i + 1), "dpaudit-raw-getenv",
             "raw getenv; read knobs through RuntimeOptions "
             "(core/runtime_options.h) or the util/env.h accessors so every "
             "knob has a flag, a default, validation, and a --help line",
             out);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// dpaudit-include-guard: headers carry either #pragma once or the
// conventional guard DPAUDIT_<PATH>_H_ (path upper-cased, "src/" dropped).

void CheckIncludeGuard(const SourceFile& file, std::vector<Finding>* out) {
  if (!IsHeader(file.rel)) return;
  for (const std::string& line : file.code_lines) {
    if (line.find("#pragma") != std::string::npos &&
        HasToken(line, "once")) {
      return;
    }
  }
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    const size_t pos = line.find("#ifndef");
    if (pos == std::string::npos) continue;
    const std::string guard = LastIdentifier(line);
    bool defined = false;
    for (size_t j = i + 1; j < std::min(i + 4, file.code_lines.size()); ++j) {
      if (file.code_lines[j].find("#define") != std::string::npos &&
          HasToken(file.code_lines[j], guard)) {
        defined = true;
        break;
      }
    }
    if (!defined) break;  // an #ifndef that is not a guard: report missing
    const std::string expected = ExpectedGuard(file.rel);
    if (guard != expected) {
      Emit(file, static_cast<int>(i + 1), "dpaudit-include-guard",
           "include guard '" + guard + "' does not match convention '" +
               expected + "'",
           out);
    }
    return;
  }
  Emit(file, 1, "dpaudit-include-guard",
       "missing include guard; add '#ifndef " + ExpectedGuard(file.rel) +
           "' / '#define ...' or '#pragma once'",
       out);
}

// ---------------------------------------------------------------------------
// dpaudit-include-order: within a block of consecutive #include lines,
// angled includes come before quoted ones and each group is sorted
// lexicographically; a .cc file's primary header leads its block. Stable
// include order keeps diffs small and makes the include graph rules'
// --fix rewrites deterministic. Mechanical — `dpaudit_lint --fix` sorts
// blocks in place.

void CheckIncludeOrder(const SourceFile& file, std::vector<Finding>* out) {
  const std::vector<std::vector<IncludeBlockEntry>> blocks =
      IncludeBlocks(file.raw_lines);
  for (const std::vector<IncludeBlockEntry>& block : blocks) {
    const std::vector<size_t> order = CanonicalIncludeOrder(block, file.rel);
    for (size_t i = 0; i < block.size(); ++i) {
      if (order[i] == i) continue;
      Emit(file, static_cast<int>(block[i].index + 1),
           "dpaudit-include-order",
           "include block is not in canonical order (primary header first, "
           "then <...> before \"...\", each sorted); run dpaudit_lint --fix",
           out);
      break;  // one finding per block
    }
  }
}

// ---------------------------------------------------------------------------
// dpaudit-lane-alias: lane workspace buffers (GradientWorkspace's lane_* and
// layers' per-lane scratch) are pack-transient — they are resized and
// overwritten on every lane pack, and may belong to a different worker's
// workspace. Storing a raw element pointer obtained through another object's
// lane buffer (`ws->lane_input.data()`) creates an alias that silently goes
// stale across packs; pass lane buffers through the batched layer API and
// call .data() at the use site instead.

void CheckLaneAlias(const SourceFile& file, std::vector<Finding>* out) {
  if (!InTree(file.rel, "src")) return;
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    size_t pos = 0;
    bool hit = false;
    while (!hit && (pos = line.find("lane_", pos)) != std::string::npos) {
      // Member access on some other object: ".lane_..." or "->lane_...".
      // A layer touching its own lane_* members (no accessor prefix) is the
      // owner, not an alias, and stays allowed.
      const bool dot = pos >= 1 && line[pos - 1] == '.';
      const bool arrow =
          pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>';
      if (!dot && !arrow) {
        pos += 5;
        continue;
      }
      // Raw element pointer taken from the buffer on the same line...
      const size_t data_pos = line.find(".data(", pos);
      if (data_pos == std::string::npos) {
        pos += 5;
        continue;
      }
      // ...and stored (an '=' to the left that is an assignment, not a
      // comparison), rather than passed straight into a call.
      for (size_t q = 0; q + 1 < pos; ++q) {
        if (line[q] != '=') continue;
        if (line[q + 1] == '=') {
          ++q;
          continue;
        }
        if (q > 0 && std::string("=!<>+-*/%&|^").find(line[q - 1]) !=
                         std::string::npos) {
          continue;
        }
        hit = true;
        break;
      }
      pos += 5;
    }
    if (hit) {
      Emit(file, static_cast<int>(i + 1), "dpaudit-lane-alias",
           "raw pointer stored into another object's lane workspace buffer; "
           "lane buffers are resized/overwritten per pack, so the alias goes "
           "stale — pass the buffer through the batched layer API and call "
           ".data() at the use site",
           out);
    }
  }
}

// ---------------------------------------------------------------------------
// dpaudit-ledger-write: the privacy-audit ledger is append-only evidence
// with a single writer (src/obs/audit_ledger). Any other library, bench, or
// example referencing a `<binary>.ledger.jsonl` path — to open, create, or
// document hand-rolling one — bypasses the manifest header, the seq
// numbering, and the schema guarantees that `dpaudit_cli ledger check`
// relies on. Emit through InitAuditLedger/AppendLedger*, read through
// LoadLedgerFile. Scans raw lines: the path almost always lives inside a
// string literal, which the code-line scanner blanks out.

void CheckLedgerWrite(const SourceFile& file, std::vector<Finding>* out) {
  const bool scoped = InTree(file.rel, "src") || InTree(file.rel, "bench") ||
                      InTree(file.rel, "examples");
  if (!scoped || StartsWith(file.rel, "src/obs/")) return;
  for (size_t i = 0; i < file.raw_lines.size(); ++i) {
    if (file.raw_lines[i].find(".ledger.jsonl") != std::string::npos) {
      Emit(file, static_cast<int>(i + 1), "dpaudit-ledger-write",
           "ledger file path referenced outside src/obs/; the audit ledger "
           "has a single append-only writer so its manifest, seq numbering, "
           "and schema stay trustworthy — write through "
           "InitAuditLedger/AppendLedger*, read through LoadLedgerFile",
           out);
    }
  }
}

// ---------------------------------------------------------------------------
// dpaudit-banned-fn: unbounded/locale-dependent C functions with safer
// replacements the codebase already uses.

struct BannedFn {
  const char* name;
  const char* instead;
};

constexpr BannedFn kBannedFns[] = {
    {"strcpy", "std::string or snprintf"},
    {"strcat", "std::string or snprintf"},
    {"sprintf", "snprintf or std::ostringstream"},
    {"vsprintf", "vsnprintf"},
    {"gets", "fgets"},
    {"strtok", "strtok_r or a manual split"},
    {"atof", "strtod or std::from_chars (atof has no error reporting and is "
             "locale-dependent — fatal in a parser)"},
    {"atoi", "strtol or std::from_chars"},
    {"atol", "strtol or std::from_chars"},
};

void CheckBannedFn(const SourceFile& file, std::vector<Finding>* out) {
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    for (const BannedFn& banned : kBannedFns) {
      if (!HasToken(line, banned.name)) continue;
      // Require a call: next non-space char after the token must be '('.
      size_t pos = line.find(banned.name);
      while (pos != std::string::npos) {
        size_t after = pos + std::string(banned.name).size();
        const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
        if (left_ok && (after >= line.size() || !IsIdentChar(line[after]))) {
          while (after < line.size() && line[after] == ' ') ++after;
          if (after < line.size() && line[after] == '(') {
            Emit(file, static_cast<int>(i + 1), "dpaudit-banned-fn",
                 std::string("banned function '") + banned.name +
                     "'; use " + banned.instead,
                 out);
            break;
          }
        }
        pos = line.find(banned.name, pos + 1);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// dpaudit-raw-thread: threads come from util/thread_pool, never raw
// std::thread/std::async — the pool owns span-context adoption, queue
// telemetry, and the nested-budget discipline.

/// Flags direct ThreadPool construction in src/ outside util/: stack
/// declarations (`ThreadPool pool(4);`), temporaries, and heap allocation via
/// new / make_unique / make_shared. Static entry points
/// (`ThreadPool::ParallelFor`) and references/pointers stay allowed, so
/// consumers keep fanning out through the process-wide SharedThreadPool().
void CheckRawPool(const SourceFile& file, std::vector<Finding>* out) {
  if (!InTree(file.rel, "src")) return;
  if (StartsWith(file.rel, "src/util/")) return;
  constexpr const char kToken[] = "ThreadPool";
  constexpr size_t kTokenLen = sizeof(kToken) - 1;
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    bool hit = line.find("new ThreadPool") != std::string::npos ||
               line.find("make_unique<ThreadPool>") != std::string::npos ||
               line.find("make_shared<ThreadPool>") != std::string::npos;
    for (size_t pos = 0; !hit; pos += kTokenLen) {
      pos = line.find(kToken, pos);
      if (pos == std::string::npos) break;
      const size_t end = pos + kTokenLen;
      const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
      const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
      if (!left_ok || !right_ok) continue;  // e.g. ThreadPoolTelemetryHooks
      size_t next = end;
      while (next < line.size() &&
             (line[next] == ' ' || line[next] == '\t')) {
        ++next;
      }
      // "ThreadPool pool(...)", "ThreadPool(...)", "ThreadPool{...}" are
      // constructions; "ThreadPool::", "ThreadPool&", "ThreadPool>" are not.
      hit = next < line.size() && (IsIdentChar(line[next]) ||
                                   line[next] == '(' || line[next] == '{');
    }
    if (hit) {
      Emit(file, static_cast<int>(i + 1), "dpaudit-raw-pool",
           "direct ThreadPool construction; use SharedThreadPool() "
           "(util/thread_pool.h) so the process keeps one persistent worker "
           "pool instead of spawning/joining per call site",
           out);
    }
  }
}

void CheckRawThread(const SourceFile& file, std::vector<Finding>* out) {
  if (!InTree(file.rel, "src")) return;
  if (StartsWith(file.rel, "src/util/thread_pool.")) return;
  constexpr const char* kTokens[] = {"std::thread", "std::jthread",
                                     "std::async"};
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    for (const char* token : kTokens) {
      if (HasToken(file.code_lines[i], token)) {
        Emit(file, static_cast<int>(i + 1), "dpaudit-raw-thread",
             std::string("raw '") + token +
                 "'; spawn work through util/thread_pool so telemetry "
                 "context adoption and thread budgets apply",
             out);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// NOLINT suppression.

/// True when `raw` carries a suppression (marker = "NOLINT" or
/// "NOLINTNEXTLINE") that covers `rule`: either bare or with the rule in its
/// parenthesized list.
bool Suppresses(const std::string& raw, const std::string& marker,
                const std::string& rule) {
  size_t pos = 0;
  while ((pos = raw.find(marker, pos)) != std::string::npos) {
    const size_t after = pos + marker.size();
    // "NOLINT" must not be the prefix of "NOLINTNEXTLINE".
    if (after < raw.size() && raw[after] == 'N') {
      pos = after;
      continue;
    }
    if (after >= raw.size() || raw[after] != '(') return true;  // bare form
    const size_t close = raw.find(')', after);
    const std::string list = raw.substr(
        after + 1, close == std::string::npos ? std::string::npos
                                              : close - after - 1);
    if (HasToken(list, rule)) return true;
    pos = after;
  }
  return false;
}

bool IsSuppressed(const SourceFile& file, const Finding& f) {
  const size_t idx = static_cast<size_t>(f.line) - 1;
  if (idx < file.raw_lines.size() &&
      Suppresses(file.raw_lines[idx], "NOLINT", f.rule)) {
    return true;
  }
  return idx >= 1 && idx - 1 < file.raw_lines.size() &&
         Suppresses(file.raw_lines[idx - 1], "NOLINTNEXTLINE", f.rule);
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

SourceFile PrepareSource(const std::string& rel, const std::string& contents) {
  SourceFile file;
  file.rel = rel;
  enum class State {
    kNormal,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kNormal;
  std::string raw_delim;  // for raw strings: ")delim" terminator
  std::string raw_line;
  std::string code_line;
  const auto flush = [&] {
    file.raw_lines.push_back(raw_line);
    file.code_lines.push_back(code_line);
    raw_line.clear();
    code_line.clear();
  };
  for (size_t i = 0; i < contents.size(); ++i) {
    const char c = contents[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kNormal;
      flush();
      continue;
    }
    raw_line += c;
    switch (state) {
      case State::kNormal: {
        const char next = i + 1 < contents.size() ? contents[i + 1] : '\0';
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += ' ';
        } else if (c == '"') {
          const bool raw_prefix = !code_line.empty() &&
                                  code_line.back() == 'R';
          code_line += c;
          if (raw_prefix) {
            state = State::kRawString;
            raw_delim = ")";
            size_t j = i + 1;
            while (j < contents.size() && contents[j] != '(') {
              raw_delim += contents[j];
              ++j;
            }
            raw_delim += '"';
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          code_line += c;
          state = State::kChar;
        } else {
          code_line += c;
        }
        break;
      }
      case State::kLineComment:
        code_line += ' ';
        break;
      case State::kBlockComment:
        code_line += ' ';
        if (c == '/' && i > 0 && contents[i - 1] == '*') {
          state = State::kNormal;
        }
        break;
      case State::kString:
      case State::kChar: {
        if (c == '\\') {
          code_line += ' ';
          if (i + 1 < contents.size() && contents[i + 1] != '\n') {
            raw_line += contents[i + 1];
            code_line += ' ';
            ++i;
          }
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          code_line += c;
          state = State::kNormal;
        } else {
          code_line += ' ';
        }
        break;
      }
      case State::kRawString: {
        code_line += ' ';
        if (c == '"' && raw_line.size() >= raw_delim.size() &&
            raw_line.compare(raw_line.size() - raw_delim.size(),
                             raw_delim.size(), raw_delim) == 0) {
          state = State::kNormal;
        }
        break;
      }
    }
  }
  if (!raw_line.empty() || !code_line.empty()) flush();
  return file;
}

bool ParseIncludeLine(const std::string& raw, std::string* spelled,
                      bool* angled) {
  size_t pos = 0;
  while (pos < raw.size() && (raw[pos] == ' ' || raw[pos] == '\t')) ++pos;
  if (pos >= raw.size() || raw[pos] != '#') return false;
  ++pos;
  while (pos < raw.size() && (raw[pos] == ' ' || raw[pos] == '\t')) ++pos;
  if (raw.compare(pos, 7, "include") != 0) return false;
  pos += 7;
  while (pos < raw.size() && (raw[pos] == ' ' || raw[pos] == '\t')) ++pos;
  if (pos >= raw.size()) return false;
  char close;
  if (raw[pos] == '"') {
    close = '"';
    *angled = false;
  } else if (raw[pos] == '<') {
    close = '>';
    *angled = true;
  } else {
    return false;
  }
  const size_t end = raw.find(close, pos + 1);
  if (end == std::string::npos) return false;
  *spelled = raw.substr(pos + 1, end - pos - 1);
  return true;
}

std::vector<std::vector<IncludeBlockEntry>> IncludeBlocks(
    const std::vector<std::string>& raw_lines) {
  std::vector<std::vector<IncludeBlockEntry>> blocks;
  std::vector<IncludeBlockEntry> current;
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    IncludeBlockEntry entry;
    entry.index = i;
    if (ParseIncludeLine(raw_lines[i], &entry.spelled, &entry.angled)) {
      current.push_back(std::move(entry));
    } else if (!current.empty()) {
      blocks.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) blocks.push_back(std::move(current));
  return blocks;
}

bool IsPrimaryInclude(const std::string& spelled, const std::string& rel) {
  if (!EndsWith(rel, ".cc") && !EndsWith(rel, ".cpp") &&
      !EndsWith(rel, ".cxx")) {
    return false;
  }
  const auto stem = [](const std::string& path) -> std::string {
    const size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const size_t dot = base.find_last_of('.');
    if (dot != std::string::npos) base.resize(dot);
    return base;
  };
  if (!EndsWith(spelled, ".h") && !EndsWith(spelled, ".hpp") &&
      !EndsWith(spelled, ".hh")) {
    return false;
  }
  return stem(spelled) == stem(rel);
}

std::vector<size_t> CanonicalIncludeOrder(
    const std::vector<IncludeBlockEntry>& block, const std::string& rel) {
  std::vector<size_t> order(block.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  size_t first = 0;
  if (!block.empty() && IsPrimaryInclude(block[0].spelled, rel)) first = 1;
  std::stable_sort(order.begin() + static_cast<long>(first), order.end(),
                   [&block](size_t a, size_t b) {
                     if (block[a].angled != block[b].angled) {
                       return block[a].angled;  // <...> before "..."
                     }
                     return block[a].spelled < block[b].spelled;
                   });
  return order;
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  findings->erase(
      std::unique(findings->begin(), findings->end(),
                  [](const Finding& a, const Finding& b) {
                    return a.file == b.file && a.line == b.line &&
                           a.rule == b.rule && a.message == b.message;
                  }),
      findings->end());
}

std::string ExpectedGuard(const std::string& rel) {
  std::string path = rel;
  if (StartsWith(path, "src/")) path = path.substr(4);
  std::string guard = "DPAUDIT_";
  for (const char c : path) {
    guard += IsIdentChar(c)
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

const std::vector<Rule>& AllRules() {
  static const std::vector<Rule> kRules = {
      {"dpaudit-banned-fn",
       "no strcpy/sprintf/gets/atof-class functions; use bounded/checked "
       "replacements",
       &CheckBannedFn},
      {"dpaudit-cerr",
       "no direct std::cerr in src/; diagnostics go through DPAUDIT_LOG or "
       "RawLogStream()",
       &CheckCerr},
      {"dpaudit-include-guard",
       "headers carry #pragma once or the DPAUDIT_<PATH>_H_ guard",
       &CheckIncludeGuard},
      {"dpaudit-include-order",
       "include blocks sort primary header first, then <...> before "
       "\"...\", each lexicographic (fixable with --fix)",
       &CheckIncludeOrder},
      {"dpaudit-lane-alias",
       "no raw pointers stored into another object's lane workspace buffers; "
       "lane buffers are pack-transient",
       &CheckLaneAlias},
      {"dpaudit-ledger-write",
       "no .ledger.jsonl paths outside src/obs/; the audit ledger has a "
       "single append-only writer",
       &CheckLedgerWrite},
      {"dpaudit-omp",
       "no #pragma omp; parallelism goes through util/thread_pool",
       &CheckOmp},
      {"dpaudit-raw-getenv",
       "no raw getenv outside core/runtime_options; knobs go through the "
       "RuntimeOptions table or util/env.h",
       &CheckRawGetenv},
      {"dpaudit-raw-pool",
       "no direct ThreadPool construction outside util/; use "
       "SharedThreadPool()",
       &CheckRawPool},
      {"dpaudit-raw-thread",
       "no raw std::thread/std::async in src/ outside util/thread_pool",
       &CheckRawThread},
      {"dpaudit-rng",
       "no rand()/std::random_device/ad-hoc engines outside util/random",
       &CheckRng},
      {"dpaudit-stdout",
       "no std::cout/printf/stdout writes in src/; results go through io/",
       &CheckStdout},
      {"dpaudit-unordered-float",
       "no floating-point accumulation over unordered container iteration",
       &CheckUnorderedFloat},
  };
  return kRules;
}

void LintFile(const SourceFile& file, const std::vector<std::string>& rules,
              std::vector<Finding>* out) {
  std::vector<Finding> found;
  for (const Rule& rule : AllRules()) {
    if (!rules.empty() &&
        std::find(rules.begin(), rules.end(), rule.name) == rules.end()) {
      continue;
    }
    rule.check(file, &found);
  }
  for (Finding& f : found) {
    if (!IsSuppressed(file, f)) out->push_back(std::move(f));
  }
  SortFindings(out);
}

bool LintPath(const std::string& path, const std::string& root,
              const std::vector<std::string>& rules,
              std::vector<Finding>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();

  std::error_code ec;
  fs::path rel = fs::relative(fs::path(path), fs::path(root), ec);
  std::string rel_str =
      (ec || rel.empty() || StartsWith(rel.generic_string(), ".."))
          ? fs::path(path).generic_string()
          : rel.generic_string();
  LintFile(PrepareSource(rel_str, buffer.str()), rules, out);
  return true;
}

std::vector<std::string> CollectFiles(const std::string& path) {
  std::vector<std::string> files;
  std::error_code ec;
  if (fs::is_regular_file(path, ec)) {
    files.push_back(path);
    return files;
  }
  constexpr const char* kExtensions[] = {".h", ".hh", ".hpp",
                                         ".cc", ".cpp", ".cxx"};
  fs::recursive_directory_iterator it(path, ec);
  const fs::recursive_directory_iterator end;
  while (!ec && it != end) {
    const fs::path p = it->path();
    const std::string name = p.filename().string();
    if (it->is_directory(ec)) {
      // Skip build trees, VCS/hidden dirs, and the intentionally-violating
      // lint fixtures.
      if (StartsWith(name, ".") || StartsWith(name, "build") ||
          name == "lint_fixtures") {
        it.disable_recursion_pending();
      }
    } else {
      const std::string ext = p.extension().string();
      for (const char* want : kExtensions) {
        if (ext == want) {
          files.push_back(p.generic_string());
          break;
        }
      }
    }
    it.increment(ec);
  }
  std::sort(files.begin(), files.end());
  return files;
}

void WriteText(const std::vector<Finding>& findings, std::ostream& out) {
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
}

void WriteJson(const std::vector<Finding>& findings, size_t files_scanned,
               std::ostream& out) {
  out << "{\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out << ",";
    out << "{\"file\":\"" << JsonEscape(f.file) << "\",\"line\":" << f.line
        << ",\"rule\":\"" << JsonEscape(f.rule) << "\",\"message\":\""
        << JsonEscape(f.message) << "\"}";
  }
  out << "],\"finding_count\":" << findings.size()
      << ",\"files_scanned\":" << files_scanned << "}\n";
}

}  // namespace lint
}  // namespace dpaudit
