// The pass-1 incremental cache: FileModels keyed by (rel path, content
// fingerprint), serialized to one text file. A warm `dpaudit_lint` run over
// an unchanged tree reads and fingerprints each source file but skips
// lexing and every per-file rule — the dominant cost — so lint_tree becomes
// near-instant between edits. The fingerprint folds in the lexer version
// (tools/lint/lexer.cc), so upgrading the tool invalidates every entry.
//
// The cache is plain derived data: deleting it is always safe, and a
// corrupt or version-skewed file is discarded wholesale rather than
// repaired.

#ifndef DPAUDIT_TOOLS_LINT_CACHE_H_
#define DPAUDIT_TOOLS_LINT_CACHE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"

namespace dpaudit {
namespace lint {

class ModelCache {
 public:
  /// Loads `path`. Missing, unreadable, or version-skewed files yield an
  /// empty cache (never an error — the cache is an optimization).
  static ModelCache Load(const std::string& path);

  /// The cached model for (rel, fingerprint), or nullptr on a miss.
  const FileModel* Lookup(const std::string& rel, uint64_t fingerprint) const;

  /// Replaces the entry set with `models` and writes the file. Returns
  /// false when the file cannot be written.
  bool Store(const std::vector<FileModel>& models, const std::string& path);

  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, FileModel> entries_;  // rel -> model
};

/// Serialization used by ModelCache and its tests.
void SerializeFileModel(const FileModel& model, std::string* out);
bool DeserializeFileModel(const std::string& text, size_t* pos,
                          FileModel* model);

}  // namespace lint
}  // namespace dpaudit

#endif  // DPAUDIT_TOOLS_LINT_CACHE_H_
