// dpaudit_lint: a repo-specific invariant linter.
//
// Token/line-level (no compiler dependency) checks for the invariants the
// audit pipeline's determinism and reproducibility claims rest on: single
// RNG discipline, no stray stdout, diagnostics through DPAUDIT_LOG, no
// unordered-container iteration feeding floating-point accumulation, no
// OpenMP pragmas (threading goes through util/thread_pool), header guard
// hygiene, and a banned-function list. See DESIGN.md §10 for the rationale
// behind each rule.
//
// Suppression mirrors clang-tidy: a trailing `// NOLINT` comment suppresses
// every rule on that line, `// NOLINT(dpaudit-<rule>)` suppresses one rule,
// and `// NOLINTNEXTLINE(...)` applies the same to the following line.

#ifndef DPAUDIT_TOOLS_LINT_LINT_H_
#define DPAUDIT_TOOLS_LINT_LINT_H_

#include <cctype>
#include <iosfwd>
#include <string>
#include <vector>

namespace dpaudit {
namespace lint {

// Small text helpers shared by the lexer, the per-file rules, and the graph
// rules (tools/lint/model.cc).

inline bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

inline bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

inline bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True when `token` occurs in `line` delimited by non-identifier characters.
/// The token itself may contain "::" (e.g. "std::thread").
bool HasToken(const std::string& line, const std::string& token);

/// One rule violation at a specific source line.
struct Finding {
  std::string file;  // path as reported (repo-relative when under --root)
  int line = 0;      // 1-based
  std::string rule;  // e.g. "dpaudit-stdout"
  std::string message;
};

/// A source file prepared for linting: the raw lines (used for NOLINT
/// detection) plus a "code view" with comment bodies and string/char
/// literal contents blanked out so token rules cannot fire inside them.
struct SourceFile {
  std::string rel;  // repo-relative path with forward slashes
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
};

/// Builds the code view from file contents. Handles //, /* */, string and
/// character literals (with escapes), and R"(...)"-style raw strings.
SourceFile PrepareSource(const std::string& rel, const std::string& contents);

/// Metadata plus implementation for one lint rule.
struct Rule {
  std::string name;     // "dpaudit-<slug>"
  std::string summary;  // one line, shown by --list-rules
  void (*check)(const SourceFile& file, std::vector<Finding>* out);
};

/// Every registered rule, in stable (alphabetical) order.
const std::vector<Rule>& AllRules();

/// Runs `rules` over `file` and appends NOLINT-filtered findings to `out`.
/// An empty `rules` list means all rules.
void LintFile(const SourceFile& file, const std::vector<std::string>& rules,
              std::vector<Finding>* out);

/// Loads `path` from disk, computes its path relative to `root` (used for
/// rule scoping), lints it, and appends findings. Returns false if the file
/// cannot be read.
bool LintPath(const std::string& path, const std::string& root,
              const std::vector<std::string>& rules,
              std::vector<Finding>* out);

/// Recursively collects lintable files (.h/.cc/.hpp/.cpp) under `path`,
/// skipping build trees, hidden directories, and tests/lint_fixtures (the
/// fixtures intentionally violate every rule). Returns sorted paths.
std::vector<std::string> CollectFiles(const std::string& path);

/// Writes findings as "file:line: [rule] message", one per line.
void WriteText(const std::vector<Finding>& findings, std::ostream& out);

/// Writes the machine-readable report:
/// {"findings":[{file,line,rule,message}...],"finding_count":N,
///  "files_scanned":M}.
void WriteJson(const std::vector<Finding>& findings, size_t files_scanned,
               std::ostream& out);

/// Writes findings as a SARIF 2.1.0 log (one run, rule metadata from
/// AllRules() plus the graph rules) for GitHub code scanning upload.
void WriteSarif(const std::vector<Finding>& findings, std::ostream& out);

/// Escapes `s` for embedding in a JSON string literal.
std::string JsonEscape(const std::string& s);

/// Sorts findings by (file, line, rule) and drops exact duplicates.
void SortFindings(std::vector<Finding>* findings);

/// Parses an `#include <x>` / `#include "x"` directive from a raw source
/// line. Returns true and fills `spelled` (path without delimiters) and
/// `angled` on match.
bool ParseIncludeLine(const std::string& raw, std::string* spelled,
                      bool* angled);

/// One include directive inside a block, by raw-line index (0-based).
struct IncludeBlockEntry {
  size_t index = 0;
  std::string spelled;
  bool angled = false;
};

/// Maximal runs of consecutive include lines. Any other line — blank,
/// code, or another preprocessor directive — ends a block, so includes
/// under #ifdef are never reordered across the conditional.
std::vector<std::vector<IncludeBlockEntry>> IncludeBlocks(
    const std::vector<std::string>& raw_lines);

/// True when `spelled` names the primary header of the source file `rel`
/// (same basename stem, header extension) — e.g. "dp/mechanism.h" for
/// "src/dp/mechanism.cc". The primary header leads its block and is exempt
/// from sorting.
bool IsPrimaryInclude(const std::string& spelled, const std::string& rel);

/// The canonical permutation of `block` for file `rel`: a leading primary
/// header stays put; the rest sort angled-first, then lexicographically.
/// Returns indices into `block`.
std::vector<size_t> CanonicalIncludeOrder(
    const std::vector<IncludeBlockEntry>& block, const std::string& rel);

/// The include-guard name this repo's convention assigns to a header path,
/// e.g. "src/util/logging.h" -> "DPAUDIT_UTIL_LOGGING_H_" and
/// "bench/bench_common.h" -> "DPAUDIT_BENCH_BENCH_COMMON_H_".
std::string ExpectedGuard(const std::string& rel);

}  // namespace lint
}  // namespace dpaudit

#endif  // DPAUDIT_TOOLS_LINT_LINT_H_
