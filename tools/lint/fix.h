// `dpaudit_lint --fix`: mechanical, idempotent rewrites for the two purely
// syntactic rules — dpaudit-include-order (sort each include block into
// canonical order) and dpaudit-include-guard (rename a mismatched guard to
// the conventional DPAUDIT_<PATH>_H_, or insert a guard where none exists).
// Canonicalize() is a pure function of (rel, contents); applying it twice
// yields byte-identical output, which tests/lint_test.cc pins.

#ifndef DPAUDIT_TOOLS_LINT_FIX_H_
#define DPAUDIT_TOOLS_LINT_FIX_H_

#include <string>

namespace dpaudit {
namespace lint {

/// Returns the fixed contents of `rel`; equal to `contents` when nothing
/// needs fixing. Only include order and include guards are touched.
std::string Canonicalize(const std::string& rel, const std::string& contents);

}  // namespace lint
}  // namespace dpaudit

#endif  // DPAUDIT_TOOLS_LINT_FIX_H_
