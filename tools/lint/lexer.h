// Pass 1 of the tree-wide analysis engine: lex one source file into a
// FileModel — its include directives, declared top-level symbols, referenced
// identifiers, NOLINT suppressions, and the findings of every per-file
// (lexical) rule. A FileModel is a pure value: it can be computed in
// parallel, serialized into the fingerprint cache (tools/lint/cache.h), and
// fed to the tree model (tools/lint/model.h) without re-reading the file.
//
// The lexer is heuristic by design (token-level, no compiler): it reuses the
// comment/string-blanking scanner from lint.cc, so rules never fire inside
// comments or literals, but it does not expand macros or instantiate
// templates. The graph rules built on top are tuned to err quiet, and every
// rule honors NOLINT(dpaudit-<rule>) escapes.

#ifndef DPAUDIT_TOOLS_LINT_LEXER_H_
#define DPAUDIT_TOOLS_LINT_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace dpaudit {
namespace lint {

/// One #include directive.
struct IncludeDirective {
  int line = 0;         // 1-based
  std::string spelled;  // path as written, without quotes/brackets
  bool angled = false;  // <...> rather than "..."
};

/// Kind of a declared top-level symbol; drives which xref queries see it.
enum class SymbolKind : uint8_t {
  kType = 0,      // class/struct/enum/union, using alias, typedef
  kFunction = 1,  // free function at namespace scope
  kVariable = 2,  // namespace-scope constant/variable
  kMacro = 3,     // #define
};

struct SymbolDecl {
  std::string name;  // unqualified identifier
  SymbolKind kind = SymbolKind::kType;
  int line = 0;
};

/// A referenced identifier and the first line it occurs on. `member_only`
/// marks tokens that only ever appear as member accesses (`x.name`,
/// `p->name`) — the missing-include rule skips those.
struct SymbolRef {
  std::string name;
  int line = 0;
  bool member_only = false;
};

/// A NOLINT / NOLINTNEXTLINE directive, extracted so graph rules can honor
/// suppressions without the raw lines (which the cache does not keep).
struct SuppressDirective {
  int line = 0;           // 1-based line the directive sits on
  bool next_line = false; // NOLINTNEXTLINE
  bool bare = false;      // no rule list: suppresses every rule
  std::vector<std::string> rules;
};

/// Everything pass 2 needs to know about one file.
struct FileModel {
  std::string rel;           // repo-relative path, forward slashes
  uint64_t fingerprint = 0;  // content fingerprint (FNV-1a 64 + version)
  bool is_header = false;
  std::vector<IncludeDirective> includes;
  std::vector<SymbolDecl> decls;
  std::vector<SymbolRef> refs;  // sorted by name, unique
  std::vector<SuppressDirective> suppressions;
  // First line constructing a GaussianMechanism with a literal sigma
  // (`GaussianMechanism m(1.5, ...)`), or 0. Computed at lex time because
  // the tree model keeps no source text; consumed by
  // dpaudit-mechanism-flow.
  int gaussian_literal_line = 0;
  // Findings of every per-file rule (already NOLINT-filtered). The driver
  // filters by the requested rule set at output time, so the cache entry
  // stays valid regardless of --rule flags.
  std::vector<Finding> findings;

  bool HasRef(const std::string& name) const;
  const SymbolRef* FindRef(const std::string& name) const;
};

/// FNV-1a 64 over the file contents, mixed with the lexer/rule version so a
/// lexer change invalidates every cache entry.
uint64_t FingerprintContents(const std::string& contents);

/// Lexes `contents` and runs all per-file rules. The returned model is
/// self-contained: the caller can drop the contents afterwards.
FileModel AnalyzeFile(const std::string& rel, const std::string& contents);

/// True when `model`'s suppressions cover a finding of `rule` at `line`.
bool IsSuppressedInModel(const FileModel& model, const std::string& rule,
                         int line);

}  // namespace lint
}  // namespace dpaudit

#endif  // DPAUDIT_TOOLS_LINT_LEXER_H_
