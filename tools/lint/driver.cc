#include "tools/lint/driver.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/cache.h"
#include "tools/lint/fix.h"
#include "tools/lint/lexer.h"
#include "tools/lint/model.h"
#include "util/thread_pool.h"

namespace dpaudit {
namespace lint {
namespace {

namespace fs = std::filesystem;

std::string Relativize(const std::string& path, const std::string& root) {
  std::error_code ec;
  fs::path rel = fs::relative(fs::path(path), fs::path(root), ec);
  if (ec || rel.empty() || StartsWith(rel.generic_string(), "..")) {
    return fs::path(path).generic_string();
  }
  return rel.generic_string();
}

bool ReadFile(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *contents = buffer.str();
  return true;
}

}  // namespace

TreeLintResult LintTree(const std::vector<std::string>& paths,
                        const TreeLintOptions& options) {
  TreeLintResult result;

  std::vector<std::string> files;
  for (const std::string& path : paths) {
    // Resolve against --root first so `dpaudit_lint --root fixtures src`
    // scans fixtures/src even when a src/ also exists in the cwd.
    fs::path resolved = fs::path(options.root) / path;
    if (!fs::exists(resolved)) resolved = fs::path(path);
    std::vector<std::string> collected = CollectFiles(resolved.string());
    if (collected.empty()) {
      result.errors.push_back("no lintable files under " + path);
      return result;
    }
    files.insert(files.end(), collected.begin(), collected.end());
  }

  LayerConfig layers;
  if (options.graph_rules) {
    std::string layers_path = options.layers_path;
    if (layers_path.empty()) {
      layers_path =
          (fs::path(options.root) / "tools" / "lint" / "layers.txt")
              .string();
    }
    std::string error;
    if (fs::exists(layers_path)) {
      if (!LoadLayerConfig(layers_path, &layers, &error)) {
        result.errors.push_back(error);
        return result;
      }
      // Messages cite the repo-relative spelling, not an absolute path.
      layers.origin = Relativize(layers_path, options.root);
    }
  }

  const ModelCache cache = ModelCache::Load(options.cache_path);

  std::vector<FileModel> models(files.size());
  std::atomic<size_t> hits{0};
  std::atomic<size_t> misses{0};
  std::atomic<size_t> fixed{0};
  std::mutex errors_mu;
  std::vector<std::string> errors;

  const size_t threads =
      options.threads != 0 ? options.threads : DefaultThreadCount();
  ThreadPool::ParallelFor(files.size(), threads, [&](size_t i) {
    std::string contents;
    if (!ReadFile(files[i], &contents)) {
      std::lock_guard<std::mutex> lock(errors_mu);
      errors.push_back("cannot read " + files[i]);
      return;
    }
    const std::string rel = Relativize(files[i], options.root);
    if (options.fix) {
      const std::string canonical = Canonicalize(rel, contents);
      if (canonical != contents) {
        std::ofstream out(files[i], std::ios::binary | std::ios::trunc);
        if (out) {
          out << canonical;
          contents = canonical;
          fixed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::lock_guard<std::mutex> lock(errors_mu);
          errors.push_back("cannot write fix to " + files[i]);
        }
      }
    }
    const uint64_t fingerprint = FingerprintContents(contents);
    const FileModel* cached = cache.Lookup(rel, fingerprint);
    if (cached != nullptr) {
      models[i] = *cached;
      hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      models[i] = AnalyzeFile(rel, contents);
      misses.fetch_add(1, std::memory_order_relaxed);
    }
  });

  result.files_scanned = files.size();
  result.cache_hits = hits.load();
  result.cache_misses = misses.load();
  result.files_fixed = fixed.load();
  result.errors = std::move(errors);
  if (!result.errors.empty()) return result;

  if (!options.cache_path.empty()) {
    // A failed write is non-fatal: the cache is an optimization and the
    // findings stand either way; the next run simply starts cold.
    ModelCache fresh;
    fresh.Store(models, options.cache_path);
  }

  // Per-file findings, filtered to the requested rules.
  for (const FileModel& model : models) {
    for (const Finding& f : model.findings) {
      if (!options.rules.empty() &&
          std::find(options.rules.begin(), options.rules.end(), f.rule) ==
              options.rules.end()) {
        continue;
      }
      result.findings.push_back(f);
    }
  }

  if (options.graph_rules) {
    const TreeModel tree =
        BuildTreeModel(std::move(models), std::move(layers));
    RunGraphRules(tree, options.rules, &result.findings);
  }
  SortFindings(&result.findings);
  return result;
}

}  // namespace lint
}  // namespace dpaudit
