#include "tools/lint/fix.h"

#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace dpaudit {
namespace lint {
namespace {

std::vector<std::string> SplitLines(const std::string& contents,
                                    bool* trailing_newline) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : contents) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  *trailing_newline = contents.empty() || contents.back() == '\n';
  if (!current.empty()) lines.push_back(current);
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines,
                      bool trailing_newline) {
  std::string out;
  for (size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size() || trailing_newline) out += '\n';
  }
  return out;
}

std::string TrailingIdentifier(const std::string& text) {
  size_t end = text.size();
  while (end > 0 && !IsIdentChar(text[end - 1])) --end;
  size_t begin = end;
  while (begin > 0 && IsIdentChar(text[begin - 1])) --begin;
  return text.substr(begin, end - begin);
}

/// Replaces every token-delimited occurrence of `from` with `to`.
void ReplaceToken(std::vector<std::string>* lines, const std::string& from,
                  const std::string& to) {
  for (std::string& line : *lines) {
    size_t pos = 0;
    while ((pos = line.find(from, pos)) != std::string::npos) {
      const size_t end = pos + from.size();
      const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
      const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
      if (left_ok && right_ok) {
        line.replace(pos, from.size(), to);
        pos += to.size();
      } else {
        pos = end;
      }
    }
  }
}

void FixIncludeOrder(const std::string& rel,
                     std::vector<std::string>* lines) {
  const std::vector<std::vector<IncludeBlockEntry>> blocks =
      IncludeBlocks(*lines);
  for (const std::vector<IncludeBlockEntry>& block : blocks) {
    const std::vector<size_t> order = CanonicalIncludeOrder(block, rel);
    std::vector<std::string> sorted;
    sorted.reserve(block.size());
    for (const size_t idx : order) {
      sorted.push_back((*lines)[block[idx].index]);
    }
    for (size_t i = 0; i < block.size(); ++i) {
      (*lines)[block[i].index] = sorted[i];
    }
  }
}

void FixIncludeGuard(const std::string& rel,
                     std::vector<std::string>* lines) {
  if (!EndsWith(rel, ".h") && !EndsWith(rel, ".hpp") &&
      !EndsWith(rel, ".hh")) {
    return;
  }
  // Work from the blanked code view so guards inside comments or strings
  // are not mistaken for the real thing — exactly what the rule checks.
  const SourceFile source = PrepareSource(rel, JoinLines(*lines, true));
  for (const std::string& line : source.code_lines) {
    if (line.find("#pragma") != std::string::npos && HasToken(line, "once")) {
      return;  // pragma once satisfies the rule
    }
  }
  const std::string expected = ExpectedGuard(rel);
  for (size_t i = 0; i < source.code_lines.size(); ++i) {
    const std::string& line = source.code_lines[i];
    if (line.find("#ifndef") == std::string::npos) continue;
    const std::string guard = TrailingIdentifier(line);
    bool defined = false;
    for (size_t j = i + 1; j < i + 4 && j < source.code_lines.size(); ++j) {
      if (source.code_lines[j].find("#define") != std::string::npos &&
          HasToken(source.code_lines[j], guard)) {
        defined = true;
        break;
      }
    }
    if (!defined) break;  // a non-guard #ifndef: fall through to insertion
    if (!guard.empty() && guard != expected) {
      ReplaceToken(lines, guard, expected);
    }
    return;
  }
  // No guard at all: insert after the leading comment/blank prologue.
  size_t insert_at = 0;
  for (size_t i = 0; i < source.code_lines.size(); ++i) {
    std::string trimmed = source.code_lines[i];
    size_t p = 0;
    while (p < trimmed.size() && (trimmed[p] == ' ' || trimmed[p] == '\t')) {
      ++p;
    }
    if (p < trimmed.size()) {
      insert_at = i;
      break;
    }
    insert_at = i + 1;
  }
  std::vector<std::string> guarded(lines->begin(),
                                   lines->begin() + static_cast<long>(
                                                        insert_at));
  guarded.push_back("#ifndef " + expected);
  guarded.push_back("#define " + expected);
  guarded.push_back("");
  guarded.insert(guarded.end(),
                 lines->begin() + static_cast<long>(insert_at),
                 lines->end());
  while (!guarded.empty() && guarded.back().empty()) guarded.pop_back();
  guarded.push_back("");
  guarded.push_back("#endif  // " + expected);
  *lines = std::move(guarded);
}

}  // namespace

std::string Canonicalize(const std::string& rel,
                         const std::string& contents) {
  bool trailing_newline = true;
  std::vector<std::string> lines = SplitLines(contents, &trailing_newline);
  FixIncludeOrder(rel, &lines);
  FixIncludeGuard(rel, &lines);
  return JoinLines(lines, trailing_newline);
}

}  // namespace lint
}  // namespace dpaudit
