// The two-pass tree linter. Pass 1 lexes every collected file into a
// FileModel — parallelized over util/thread_pool's SharedThreadPool, with
// the content-fingerprint cache (tools/lint/cache.h) short-circuiting
// unchanged files. Pass 2 builds the TreeModel and runs the graph rules
// (tools/lint/model.h). With `fix` set, the mechanical rewrites
// (tools/lint/fix.h) are applied before analysis, so the emitted findings
// describe the fixed tree.

#ifndef DPAUDIT_TOOLS_LINT_DRIVER_H_
#define DPAUDIT_TOOLS_LINT_DRIVER_H_

#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace dpaudit {
namespace lint {

struct TreeLintOptions {
  std::string root = ".";
  std::vector<std::string> rules;  // empty = all rules
  std::string cache_path;          // empty = cache disabled
  std::string layers_path;         // empty = <root>/tools/lint/layers.txt
  bool graph_rules = true;         // run pass 2
  bool fix = false;                // apply mechanical fixes in place
  size_t threads = 0;              // 0 = DefaultThreadCount()
};

struct TreeLintResult {
  std::vector<Finding> findings;
  size_t files_scanned = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t files_fixed = 0;
  std::vector<std::string> errors;  // unreadable files, bad layer config
};

/// Lints every lintable file under `paths` (resolved against
/// options.root). Graph rules see exactly the collected set, so running on
/// a subtree checks that subtree's edges only; the lint_tree ctest and CI
/// run the full default trees.
TreeLintResult LintTree(const std::vector<std::string>& paths,
                        const TreeLintOptions& options);

}  // namespace lint
}  // namespace dpaudit

#endif  // DPAUDIT_TOOLS_LINT_DRIVER_H_
