// dpaudit command-line tool.
//
//   dpaudit_cli scores --epsilon 2.2 --delta 0.001
//       Print the identifiability scores for a DP guarantee.
//
//   dpaudit_cli plan --rho-beta 0.9 --delta 0.001 --steps 30
//   dpaudit_cli plan --rho-alpha 0.23 --delta 0.001 --steps 30
//       Turn an identifiability requirement into a full privacy plan.
//
//   dpaudit_cli experiment --dataset mnist|purchase --epsilon 2.2
//       [--reps 20] [--sensitivity ls|gs] [--neighbors bounded|unbounded]
//       [--epochs 30] [--n 30] [--seed 42] [--save-model weights.dpau]
//       Run the repeated Exp^DI with the DP adversary and print the audit.
//       With DPAUDIT_TRACE_CACHE set, repeated invocations replay the
//       recorded step trace instead of retraining.
//
//   dpaudit_cli trace list [--cache DIR]
//   dpaudit_cli trace show --key HEX [--cache DIR]
//   dpaudit_cli trace evict (--key HEX | --all true) [--cache DIR]
//       Inspect and manage the step-trace cache. --cache defaults to the
//       DPAUDIT_TRACE_CACHE environment variable.
//
//   dpaudit_cli metrics [--from-jsonl FILE]
//       Print a Prometheus text exposition: of this process's registry
//       (build info plus anything the invoked command recorded), or of a
//       telemetry events.jsonl written by an earlier --telemetry run.
//
//   dpaudit_cli ledger list --file RUN.ledger.jsonl
//   dpaudit_cli ledger show --file RUN.ledger.jsonl [--seq N]
//   dpaudit_cli ledger check --file RUN.ledger.jsonl [--tolerance 1e-9]
//   dpaudit_cli ledger diff --a A.ledger.jsonl --b B.ledger.jsonl
//       Inspect and verify a privacy-audit ledger written by a --telemetry
//       run. `check` recomputes the content digests, replays every belief
//       trajectory, and re-derives the three epsilon' estimators from the
//       rows alone, verifying them against the recorded audit values.
//       `diff` compares two runs' ledgers field by field.
//
//   dpaudit_cli sweep status --journal RUN.sweep.jsonl
//   dpaudit_cli sweep resume --journal RUN.sweep.jsonl
//       Inspect a sweep checkpoint journal (core/sweep_journal.h), or
//       re-execute the recorded command with DPAUDIT_SWEEP_CHECKPOINT set so
//       the interrupted sweep resumes where it stopped.
//
// Every command also accepts the shared runtime flags (--threads=N,
// --lanes=N, --retries=N, --telemetry=DIR, ... — see core/runtime_options.h
// or --help); precedence is flag > DPAUDIT_* env > default.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/auditor.h"
#include "core/experiment.h"
#include "core/ledger_verify.h"
#include "core/policy.h"
#include "core/report.h"
#include "core/runtime_options.h"
#include "core/scores.h"
#include "core/sweep_journal.h"
#include "core/trace.h"
#include "data/dataset_sensitivity.h"
#include "data/synthetic_mnist.h"
#include "data/synthetic_purchase.h"
#include "dp/rdp_accountant.h"
#include "io/serialization.h"
#include "nn/network.h"
#include "obs/audit_ledger.h"
#include "obs/telemetry.h"
#include "util/arg_parser.h"
#include "util/env.h"

namespace dpaudit {
namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: dpaudit_cli "
      "<scores|plan|experiment|trace|ledger|sweep|metrics> [--flags]\n"
      "  scores     --epsilon E --delta D\n"
      "  plan       (--rho-beta B | --rho-alpha A) --delta D "
      "[--steps K]\n"
      "  experiment --dataset mnist|purchase [--epsilon E] "
      "[--reps R]\n"
      "             [--sensitivity ls|gs] [--neighbors "
      "bounded|unbounded]\n"
      "             [--epochs K] [--n N] [--seed S]\n"
      "             [--save-model PATH] [--report PATH.md]\n"
      "             [--telemetry DIR]  (or $DPAUDIT_TELEMETRY)\n"
      "  trace      list | show --key HEX | evict (--key HEX | "
      "--all true)\n"
      "             [--cache DIR]  (default: $DPAUDIT_TRACE_CACHE)\n"
      "  ledger     list --file F | show --file F [--seq N]\n"
      "             | check --file F [--tolerance 1e-9]\n"
      "             | diff --a F --b F\n"
      "  sweep      status --journal F | resume --journal F\n"
      "  metrics    [--from-jsonl FILE]\n"
      "shared runtime flags (--threads=N, --retries=N, ...): --help\n");
}

Status RunScores(const ArgParser& args) {
  DPAUDIT_ASSIGN_OR_RETURN(double epsilon, args.GetDouble("epsilon", 2.2));
  DPAUDIT_ASSIGN_OR_RETURN(double delta, args.GetDouble("delta", 1e-3));
  DPAUDIT_RETURN_IF_ERROR(args.CheckAllConsumed());
  DPAUDIT_ASSIGN_OR_RETURN(double rho_beta, RhoBeta(epsilon));
  DPAUDIT_ASSIGN_OR_RETURN(double rho_alpha, RhoAlpha(epsilon, delta));
  std::printf("(%g, %g)-DP corresponds to:\n", epsilon, delta);
  std::printf("  rho_beta  (max posterior belief)     = %.4f\n", rho_beta);
  std::printf("  rho_alpha (expected adv., Gaussian)  = %.4f\n", rho_alpha);
  return Status::Ok();
}

Status RunPlan(const ArgParser& args) {
  IdentifiabilityRequirement requirement;
  DPAUDIT_ASSIGN_OR_RETURN(double delta, args.GetDouble("delta", 1e-3));
  DPAUDIT_ASSIGN_OR_RETURN(int64_t steps, args.GetInt("steps", 30));
  requirement.delta = delta;
  requirement.steps = static_cast<size_t>(steps);
  bool has_beta = args.Has("rho-beta");
  bool has_alpha = args.Has("rho-alpha");
  if (has_beta == has_alpha) {
    return Status::InvalidArgument(
        "pass exactly one of --rho-beta / --rho-alpha");
  }
  if (has_beta) {
    requirement.kind = RequirementKind::kMaxPosteriorBelief;
    DPAUDIT_ASSIGN_OR_RETURN(requirement.bound,
                             args.GetDouble("rho-beta", 0.9));
  } else {
    requirement.kind = RequirementKind::kMaxExpectedAdvantage;
    DPAUDIT_ASSIGN_OR_RETURN(requirement.bound,
                             args.GetDouble("rho-alpha", 0.2));
  }
  DPAUDIT_RETURN_IF_ERROR(args.CheckAllConsumed());
  DPAUDIT_ASSIGN_OR_RETURN(PrivacyPlan plan, MakePrivacyPlan(requirement));
  std::printf("%s\n", plan.ToString().c_str());
  return Status::Ok();
}

Status RunExperiment(const ArgParser& args) {
  std::string dataset_name = args.GetString("dataset", "mnist");
  DPAUDIT_ASSIGN_OR_RETURN(double epsilon, args.GetDouble("epsilon", 2.2));
  DPAUDIT_ASSIGN_OR_RETURN(int64_t reps, args.GetInt("reps", 20));
  DPAUDIT_ASSIGN_OR_RETURN(int64_t epochs, args.GetInt("epochs", 30));
  DPAUDIT_ASSIGN_OR_RETURN(int64_t n, args.GetInt("n", 30));
  DPAUDIT_ASSIGN_OR_RETURN(int64_t seed, args.GetInt("seed", 42));
  std::string sensitivity = args.GetString("sensitivity", "ls");
  std::string neighbors = args.GetString("neighbors", "bounded");
  std::string save_model = args.GetString("save-model", "");
  std::string report_path = args.GetString("report", "");
  std::string telemetry_dir = args.GetString("telemetry", "");
  DPAUDIT_RETURN_IF_ERROR(args.CheckAllConsumed());

  obs::TelemetryOptions telemetry = obs::TelemetryOptionsFromEnv();
  const RuntimeOptions& runtime = CurrentRuntimeOptions();
  if (runtime.telemetry_enabled) {
    // --telemetry=DIR goes through the shared runtime flags (stripped in
    // Main); the historical "--telemetry DIR" space form below still wins.
    telemetry.enabled = true;
    telemetry.directory = runtime.telemetry_dir;
  }
  if (!telemetry_dir.empty()) {
    telemetry.enabled = true;
    telemetry.directory = telemetry_dir;
  }
  obs::InitTelemetry("dpaudit_cli", telemetry);

  if (n < 4) return Status::InvalidArgument("--n must be >= 4");
  NeighborMode neighbor_mode;
  if (neighbors == "bounded") {
    neighbor_mode = NeighborMode::kBounded;
  } else if (neighbors == "unbounded") {
    neighbor_mode = NeighborMode::kUnbounded;
  } else {
    return Status::InvalidArgument("--neighbors must be bounded|unbounded");
  }
  SensitivityMode sensitivity_mode;
  if (sensitivity == "ls") {
    sensitivity_mode = SensitivityMode::kLocalHat;
  } else if (sensitivity == "gs") {
    sensitivity_mode = SensitivityMode::kGlobal;
  } else {
    return Status::InvalidArgument("--sensitivity must be ls|gs");
  }

  // Build the task.
  Rng rng(static_cast<uint64_t>(seed));
  Dataset d;
  Dataset pool;
  DissimilarityFn dissimilarity;
  Network architecture;
  double delta;
  if (dataset_name == "mnist") {
    SyntheticMnistConfig config;
    Dataset all =
        GenerateSyntheticMnist(2 * static_cast<size_t>(n), config, rng);
    d = all.SampleSplit(static_cast<size_t>(n), rng, &pool);
    dissimilarity = NegativeSsim;
    architecture = BuildMnistNetwork(config.image_size, 4, 8);
    delta = 1.0 / static_cast<double>(n);
  } else if (dataset_name == "purchase") {
    SyntheticPurchaseConfig config;
    config.num_classes = 30;
    SyntheticPurchaseGenerator generator(config,
                                         static_cast<uint64_t>(seed) ^ 0x77);
    Dataset all = generator.Generate(2 * static_cast<size_t>(n), rng);
    d = all.SampleSplit(static_cast<size_t>(n), rng, &pool);
    dissimilarity = HammingDistance;
    architecture =
        BuildPurchaseNetwork(config.num_features, 48, config.num_classes);
    delta = 1.0 / static_cast<double>(n);
  } else {
    return Status::InvalidArgument("--dataset must be mnist|purchase");
  }

  // Worst-case neighbor via dataset sensitivity.
  Dataset d_prime;
  if (neighbor_mode == NeighborMode::kBounded) {
    DPAUDIT_ASSIGN_OR_RETURN(std::vector<BoundedCandidate> ranked,
                             RankBoundedCandidates(d, pool, dissimilarity));
    d_prime = MakeBoundedNeighbor(d, pool, ranked.front());
  } else {
    DPAUDIT_ASSIGN_OR_RETURN(std::vector<UnboundedCandidate> ranked,
                             RankUnboundedCandidates(d, dissimilarity));
    d_prime = MakeUnboundedNeighbor(d, ranked.front());
  }

  DiExperimentConfig config;
  config.dpsgd.epochs = static_cast<size_t>(epochs);
  config.dpsgd.learning_rate = 0.005;
  config.dpsgd.clip_norm = 3.0;
  DPAUDIT_ASSIGN_OR_RETURN(
      config.dpsgd.noise_multiplier,
      NoiseMultiplierForTargetEpsilon(epsilon, delta,
                                      static_cast<size_t>(epochs)));
  config.dpsgd.sensitivity_mode = sensitivity_mode;
  config.dpsgd.neighbor_mode = neighbor_mode;
  config.repetitions = static_cast<size_t>(reps);
  config.seed = static_cast<uint64_t>(seed);
  config.trace_store = TraceStore::FromEnv();

  std::printf("running Exp^DI: %s, |D|=%lld, eps=%g, delta=%g, k=%lld, "
              "z=%.3f, %s/%s, %lld reps\n",
              dataset_name.c_str(), static_cast<long long>(n), epsilon,
              delta, static_cast<long long>(epochs),
              config.dpsgd.noise_multiplier,
              SensitivityModeToString(sensitivity_mode),
              NeighborModeToString(neighbor_mode),
              static_cast<long long>(reps));

  DPAUDIT_ASSIGN_OR_RETURN(DiExperimentSummary summary,
                           RunDiExperiment(architecture, d, d_prime, config));
  DPAUDIT_ASSIGN_OR_RETURN(AuditReport report,
                           AuditExperiment(summary, delta));
  DPAUDIT_ASSIGN_OR_RETURN(double rho_alpha, RhoAlpha(epsilon, delta));
  DPAUDIT_ASSIGN_OR_RETURN(double rho_beta, RhoBeta(epsilon));

  std::printf("\nresults over %zu runs:\n", summary.trials.size());
  std::printf("  empirical advantage     = %.3f   (rho_alpha %.3f)\n",
              summary.EmpiricalAdvantage(), rho_alpha);
  std::printf("  max posterior belief    = %.3f   (rho_beta  %.3f)\n",
              summary.MaxBeliefInD(), rho_beta);
  std::printf("  empirical delta         = %.4f  (delta      %.4f)\n",
              summary.EmpiricalDelta(rho_beta), delta);
  std::printf("  eps' from sensitivities = %.3f   (target eps %.3f)\n",
              report.epsilon_from_sensitivities, epsilon);
  std::printf("  eps' from max belief    = %.3f\n",
              report.epsilon_from_belief);
  std::printf("  eps' from advantage     = %.3f\n",
              report.epsilon_from_advantage);
  DPAUDIT_ASSIGN_OR_RETURN(EpsilonInterval interval,
                           EpsilonIntervalFromAdvantage(summary, delta));
  std::printf("  eps' 95%% interval (adv) = [%.3f, %.3f]\n", interval.lo,
              interval.hi);

  if (!report_path.empty()) {
    DPAUDIT_ASSIGN_OR_RETURN(
        PrivacyPlan plan,
        PlanFromPrivacyParams({epsilon, delta},
                              static_cast<size_t>(epochs)));
    DPAUDIT_ASSIGN_OR_RETURN(
        AuditReportDocument document,
        BuildAuditReport(plan, summary,
                         dataset_name + " (synthetic), |D| = " +
                             std::to_string(n)));
    DPAUDIT_RETURN_IF_ERROR(WriteAuditReport(report_path, document));
    std::printf("  markdown report saved to %s\n", report_path.c_str());
  }

  if (!save_model.empty()) {
    // Retrain once (same seed, trial 0 settings) and persist the weights.
    Rng model_rng(static_cast<uint64_t>(seed));
    Network model = architecture.Clone();
    model.Initialize(model_rng);
    DPAUDIT_ASSIGN_OR_RETURN(
        DpSgdResult trained,
        RunDpSgd(model, d, d_prime, /*train_on_d=*/true, config.dpsgd,
                 model_rng));
    DPAUDIT_RETURN_IF_ERROR(SaveWeights(save_model, trained.model));
    std::printf("  model weights saved to %s\n", save_model.c_str());
  }
  obs::FlushTelemetry();
  return Status::Ok();
}

Status RunMetrics(const ArgParser& args) {
  std::string from_jsonl = args.GetString("from-jsonl", "");
  DPAUDIT_RETURN_IF_ERROR(args.CheckAllConsumed());
  if (!from_jsonl.empty()) {
    std::ifstream in(from_jsonl);
    if (!in) {
      return Status::NotFound("cannot open " + from_jsonl);
    }
    return obs::RenderPrometheusFromJsonl(in, std::cout);
  }
  obs::RegisterBuildInfo("dpaudit_cli");
  obs::WritePrometheus(std::cout);
  return Status::Ok();
}

Status RunTrace(const ArgParser& args) {
  if (args.positional().size() != 2) {
    return Status::InvalidArgument("trace needs an action: list|show|evict");
  }
  const std::string& action = args.positional()[1];
  std::string cache_dir =
      args.GetString("cache", EnvString("DPAUDIT_TRACE_CACHE", ""));
  std::string key = args.GetString("key", "");
  DPAUDIT_ASSIGN_OR_RETURN(bool all, args.GetBool("all", false));
  DPAUDIT_RETURN_IF_ERROR(args.CheckAllConsumed());
  if (cache_dir.empty()) {
    return Status::InvalidArgument(
        "pass --cache DIR or set DPAUDIT_TRACE_CACHE");
  }
  TraceStore store(cache_dir);

  if (action == "list") {
    DPAUDIT_ASSIGN_OR_RETURN(std::vector<TraceStore::Entry> entries,
                             store.List());
    std::printf("trace cache %s: %zu entr%s\n", cache_dir.c_str(),
                entries.size(), entries.size() == 1 ? "y" : "ies");
    for (const TraceStore::Entry& entry : entries) {
      std::printf("  %s  reps=%-4zu steps=%-4zu %llu bytes\n",
                  entry.key.c_str(), entry.repetitions, entry.steps,
                  static_cast<unsigned long long>(entry.bytes));
    }
    const TraceCacheCounters counters = GetTraceCacheCounters();
    std::printf("cache counters (this invocation): hits=%llu misses=%llu "
                "corrupt=%llu evictions=%llu\n",
                static_cast<unsigned long long>(counters.hits),
                static_cast<unsigned long long>(counters.misses),
                static_cast<unsigned long long>(counters.corrupt),
                static_cast<unsigned long long>(counters.evictions));
    return Status::Ok();
  }

  if (action == "show") {
    if (key.empty()) return Status::InvalidArgument("show needs --key HEX");
    DPAUDIT_ASSIGN_OR_RETURN(TraceFingerprint fingerprint,
                             TraceFingerprint::FromHex(key));
    DPAUDIT_ASSIGN_OR_RETURN(ExperimentTrace trace,
                             store.Load(fingerprint));
    DiExperimentSummary summary = trace.ToSummary();
    std::printf("trace %s (%s)\n", key.c_str(),
                store.PathFor(fingerprint).c_str());
    std::printf("  repetitions        = %zu\n", trace.trials.size());
    std::printf("  steps per trial    = %zu\n",
                trace.trials.empty() ? 0 : trace.trials[0].steps.size());
    std::printf("  success rate       = %.3f\n", summary.SuccessRate());
    std::printf("  empirical adv      = %.3f\n",
                summary.EmpiricalAdvantage());
    std::printf("  max belief in D    = %.3f\n", summary.MaxBeliefInD());
    if (!trace.trials.empty()) {
      const TrialTrace& first = trace.trials[0];
      std::printf("  trial 0: trained_on_d=%d says_d=%d final_belief=%.4f "
                  "max_belief=%.4f\n",
                  first.trained_on_d ? 1 : 0, first.adversary_says_d ? 1 : 0,
                  first.final_belief_d, first.max_belief_d);
      if (!first.steps.empty()) {
        const StepTraceRecord& step = first.steps[0];
        std::printf("  trial 0 step 0: clip=%.4f ls=%.6f used=%.6f "
                    "sigma=%.6f belief=%.4f\n",
                    step.clip_norm, step.local_sensitivity,
                    step.sensitivity_used, step.sigma, step.belief_d);
      }
    }
    return Status::Ok();
  }

  if (action == "evict") {
    if (!all && key.empty()) {
      return Status::InvalidArgument("evict needs --key HEX or --all true");
    }
    if (all) {
      DPAUDIT_ASSIGN_OR_RETURN(size_t removed, store.EvictAll());
      std::printf("evicted %zu entr%s from %s\n", removed,
                  removed == 1 ? "y" : "ies", cache_dir.c_str());
      return Status::Ok();
    }
    DPAUDIT_RETURN_IF_ERROR(store.Evict(key));
    std::printf("evicted %s\n", key.c_str());
    return Status::Ok();
  }

  return Status::InvalidArgument("unknown trace action: " + action);
}

Status RunLedger(const ArgParser& args) {
  if (args.positional().size() != 2) {
    return Status::InvalidArgument(
        "ledger needs an action: list|show|check|diff");
  }
  const std::string& action = args.positional()[1];

  if (action == "diff") {
    std::string path_a = args.GetString("a", "");
    std::string path_b = args.GetString("b", "");
    DPAUDIT_RETURN_IF_ERROR(args.CheckAllConsumed());
    if (path_a.empty() || path_b.empty()) {
      return Status::InvalidArgument("diff needs --a FILE and --b FILE");
    }
    DPAUDIT_ASSIGN_OR_RETURN(obs::LedgerFile a, obs::LoadLedgerFile(path_a));
    DPAUDIT_ASSIGN_OR_RETURN(obs::LedgerFile b, obs::LoadLedgerFile(path_b));
    const size_t differences = obs::DiffLedgers(a, b, std::cout);
    if (differences > 0) {
      return Status::InvalidArgument(
          "ledgers differ in " + std::to_string(differences) + " field(s)");
    }
    std::printf("ledgers match: %zu experiment(s), %zu audit(s)\n",
                a.experiments.size(), a.audits.size());
    return Status::Ok();
  }

  std::string path = args.GetString("file", "");
  if (path.empty()) {
    return Status::InvalidArgument("pass --file RUN.ledger.jsonl");
  }

  if (action == "check") {
    DPAUDIT_ASSIGN_OR_RETURN(double tolerance,
                             args.GetDouble("tolerance", 1e-9));
    DPAUDIT_RETURN_IF_ERROR(args.CheckAllConsumed());
    return CheckLedgerFile(path, tolerance, std::cout);
  }

  DPAUDIT_ASSIGN_OR_RETURN(obs::LedgerFile ledger,
                           obs::LoadLedgerFile(path));

  if (action == "list") {
    DPAUDIT_RETURN_IF_ERROR(args.CheckAllConsumed());
    std::printf("ledger %s (schema v%llu, binary %s, commit %s, simd %s)\n",
                path.c_str(),
                static_cast<unsigned long long>(
                    ledger.manifest.schema_version),
                ledger.manifest.binary.c_str(),
                ledger.manifest.git_commit.c_str(),
                ledger.manifest.simd.c_str());
    for (const obs::LedgerExperiment& experiment : ledger.experiments) {
      std::printf("  experiment seq=%-4zu %s digest=%s reps=%-4zu "
                  "steps=%-4zu sigma=%g %s/%s\n",
                  experiment.seq, experiment.fingerprint.c_str(),
                  experiment.digest.c_str(), experiment.trials.size(),
                  experiment.steps_per_trial, experiment.noise_multiplier,
                  experiment.sensitivity_mode.c_str(),
                  experiment.neighbor_mode.c_str());
    }
    for (const obs::LedgerAudit& audit : ledger.audits) {
      std::printf("  audit      seq=%-4zu digest=%s delta=%g "
                  "eps_sens=%.6f eps_belief=%.6f eps_adv=%.6f\n",
                  audit.seq, audit.digest.c_str(), audit.delta,
                  audit.epsilon_from_sensitivities,
                  audit.epsilon_from_belief, audit.epsilon_from_advantage);
    }
    std::printf("%zu experiment(s), %zu audit(s)\n",
                ledger.experiments.size(), ledger.audits.size());
    return Status::Ok();
  }

  if (action == "show") {
    DPAUDIT_ASSIGN_OR_RETURN(int64_t seq, args.GetInt("seq", 0));
    DPAUDIT_RETURN_IF_ERROR(args.CheckAllConsumed());
    const obs::LedgerExperiment* experiment = nullptr;
    for (const obs::LedgerExperiment& candidate : ledger.experiments) {
      if (candidate.seq == static_cast<size_t>(seq)) {
        experiment = &candidate;
        break;
      }
    }
    if (experiment == nullptr) {
      return Status::NotFound("no experiment with seq " +
                              std::to_string(seq));
    }
    std::printf("experiment seq=%zu\n", experiment->seq);
    std::printf("  fingerprint       = %s\n",
                experiment->fingerprint.c_str());
    std::printf("  digest            = %s\n", experiment->digest.c_str());
    std::printf("  seed              = %llu\n",
                static_cast<unsigned long long>(experiment->seed));
    std::printf("  repetitions       = %zu (steps/trial %zu)\n",
                experiment->trials.size(), experiment->steps_per_trial);
    std::printf("  dpsgd             = epochs %zu, lr %g, clip %g, "
                "sigma %g, %s/%s\n",
                experiment->epochs, experiment->learning_rate,
                experiment->clip_norm, experiment->noise_multiplier,
                experiment->sensitivity_mode.c_str(),
                experiment->neighbor_mode.c_str());
    std::printf("  datasets          = D %s, D' %s, test %s\n",
                experiment->dataset_digest_d.c_str(),
                experiment->dataset_digest_dprime.c_str(),
                experiment->dataset_digest_test.empty()
                    ? "(none)"
                    : experiment->dataset_digest_test.c_str());
    for (const obs::LedgerTrial& trial : experiment->trials) {
      std::printf("  trial rep=%-4zu trained_on_d=%d says_d=%d "
                  "final_belief=%.6f max_belief=%.6f\n",
                  trial.rep, trial.trained_on_d ? 1 : 0,
                  trial.adversary_says_d ? 1 : 0, trial.final_belief_d,
                  trial.max_belief_d);
    }
    for (const obs::LedgerAudit& audit : ledger.audits) {
      if (audit.digest != experiment->digest) continue;
      std::printf("  audit seq=%zu: delta=%g eps_sens=%.6f "
                  "eps_belief=%.6f eps_adv=%.6f advantage=%.4f "
                  "max_belief=%.6f\n",
                  audit.seq, audit.delta,
                  audit.epsilon_from_sensitivities,
                  audit.epsilon_from_belief, audit.epsilon_from_advantage,
                  audit.advantage, audit.max_belief);
    }
    return Status::Ok();
  }

  return Status::InvalidArgument("unknown ledger action: " + action);
}

Status RunSweepStatus(const std::string& path) {
  DPAUDIT_ASSIGN_OR_RETURN(LoadedSweepJournal journal,
                           LoadSweepJournal(path));
  std::printf("sweep journal %s (schema v%u)\n", path.c_str(),
              journal.has_manifest ? journal.manifest.schema_version
                                   : kSweepJournalSchemaVersion);
  if (journal.has_manifest) {
    std::string command = journal.manifest.binary;
    for (const std::string& arg : journal.manifest.args) {
      command += " " + arg;
    }
    std::printf("  command  = %s\n", command.c_str());
    std::printf("  cwd      = %s\n", journal.manifest.cwd.c_str());
  } else {
    std::printf("  command  = (no manifest row — not resumable)\n");
  }
  std::printf("  trials   = %zu across %zu cell(s)\n", journal.trial_rows,
              journal.trials.size());
  for (const auto& cell : journal.trials) {
    uint64_t max_rep = 0;
    for (const auto& rep : cell.second) max_rep = rep.first;
    std::printf("  cell %s: %zu rep(s), highest rep %llu\n",
                cell.first.c_str(), cell.second.size(),
                static_cast<unsigned long long>(max_rep));
  }
  if (journal.dropped_rows > 0) {
    std::printf("  dropped  = %zu corrupt row(s) (will re-run)\n",
                journal.dropped_rows);
  }
  if (journal.torn_tail) {
    std::printf("  torn tail after byte %lld (crash signature; truncated on "
                "resume)\n",
                journal.valid_bytes);
  }
  return Status::Ok();
}

Status RunSweepResume(const std::string& path) {
  DPAUDIT_ASSIGN_OR_RETURN(LoadedSweepJournal journal,
                           LoadSweepJournal(path));
  if (!journal.has_manifest) {
    return Status::FailedPrecondition(
        "journal " + path +
        " has no manifest row; re-launch the original command with "
        "--checkpoint=" + path + " instead");
  }
  std::error_code ec;
  const std::string absolute =
      std::filesystem::absolute(path, ec).string();
  if (ec) return Status::Internal("cannot resolve " + path);
  // The resumed process re-derives its checkpoint from this variable (env
  // beats the default; an explicit --checkpoint flag in the recorded args
  // still wins, and points at the same file).
  ::setenv("DPAUDIT_SWEEP_CHECKPOINT", absolute.c_str(), /*overwrite=*/1);
  if (!journal.manifest.cwd.empty()) {
    std::filesystem::current_path(journal.manifest.cwd, ec);
    if (ec) {
      return Status::FailedPrecondition(
          "cannot chdir to recorded cwd " + journal.manifest.cwd +
          "; re-run from there manually");
    }
  }
  std::vector<std::string> command;
  command.push_back(journal.manifest.binary);
  for (const std::string& arg : journal.manifest.args) {
    command.push_back(arg);
  }
  std::string display;
  for (const std::string& part : command) {
    if (!display.empty()) display += " ";
    display += part;
  }
  std::fprintf(stderr, "resuming: %s (journal %s, %zu trial(s) recorded)\n",
               display.c_str(), absolute.c_str(), journal.trial_rows);
  std::vector<char*> exec_argv;
  exec_argv.reserve(command.size() + 1);
  for (std::string& part : command) {
    exec_argv.push_back(part.data());
  }
  exec_argv.push_back(nullptr);
  ::execvp(exec_argv[0], exec_argv.data());
  return Status::NotFound("cannot execute " + command[0] +
                          " (recorded in the journal manifest); re-run it "
                          "manually with DPAUDIT_SWEEP_CHECKPOINT=" +
                          absolute);
}

Status RunSweepCmd(const ArgParser& args) {
  if (args.positional().size() != 2) {
    return Status::InvalidArgument("sweep needs an action: status|resume");
  }
  const std::string& action = args.positional()[1];
  std::string journal = args.GetString("journal", "");
  DPAUDIT_RETURN_IF_ERROR(args.CheckAllConsumed());
  if (journal.empty()) {
    return Status::InvalidArgument("pass --journal RUN.sweep.jsonl");
  }
  if (action == "status") return RunSweepStatus(journal);
  if (action == "resume") return RunSweepResume(journal);
  return Status::InvalidArgument("unknown sweep action: " + action);
}

int Main(int argc, char** argv) {
  StatusOr<RuntimeOptions> runtime =
      RuntimeOptions::FromEnvAndArgs(&argc, argv);
  if (!runtime.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 runtime.status().ToString().c_str());
    PrintUsage();
    return 2;
  }
  if (runtime->help) {
    PrintUsage();
    PrintRuntimeOptionsHelp(argv[0], std::cout);
    return 0;
  }
  InitRuntimeOptions(*runtime);
  Status applied = ApplyRuntimeOptions(*runtime);
  if (!applied.ok()) {
    std::fprintf(stderr, "error: %s\n", applied.ToString().c_str());
    return 2;
  }
  StatusOr<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    PrintUsage();
    return 2;
  }
  if (args->positional().empty()) {
    PrintUsage();
    return 2;
  }
  const std::string& command = args->positional()[0];
  if (command != "trace" && command != "ledger" && command != "sweep" &&
      args->positional().size() != 1) {
    PrintUsage();
    return 2;
  }
  Status status = Status::InvalidArgument("unknown command: " + command);
  if (command == "scores") status = RunScores(*args);
  if (command == "plan") status = RunPlan(*args);
  if (command == "experiment") status = RunExperiment(*args);
  if (command == "trace") status = RunTrace(*args);
  if (command == "ledger") status = RunLedger(*args);
  if (command == "sweep") status = RunSweepCmd(*args);
  if (command == "metrics") status = RunMetrics(*args);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    if (status.code() == StatusCode::kInvalidArgument) PrintUsage();
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dpaudit

int main(int argc, char** argv) { return dpaudit::Main(argc, argv); }
